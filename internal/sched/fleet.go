package sched

import (
	"fmt"
	"sort"

	"carbonshift/internal/tenant"
	"carbonshift/internal/trace"
)

// Fleet is the incremental core of the simulator: the same hour-stepped
// world that Run simulates, but driven one tick at a time, with jobs
// submitted while it runs. Run is a thin offline loop over a Fleet;
// internal/schedd serves one over HTTP against a replayed clock. The
// two paths share every line of scheduling logic, so the online service
// is placement-for-placement identical to the batch simulator.
//
// A Fleet is not safe for concurrent use; callers that share one across
// goroutines (e.g. an HTTP server) must serialize access.
type Fleet struct {
	set     *trace.Set
	policy  Policy
	horizon int

	slots       map[string]int
	regionsList []string
	totalSlots  int

	hour          int
	states        []*state
	byID          map[int]*state
	free          map[string]int
	slotHoursUsed float64
	completed     int

	// fq, when non-nil, reorders each hour's policy-eligible list
	// into weighted-fair (deficit round robin) order and is charged
	// one unit per executed job-hour. Its pass state is part of the
	// fleet image.
	fq *tenant.FairQueue

	// OnPlace, when non-nil, observes every executed job-hour in
	// deterministic submission order: it is called once per job that
	// runs during a Step, after the hour's placements are final.
	OnPlace func(hour, jobID int, region string)

	// OnPlaceDetail, when non-nil, additionally observes the job's
	// origin region and tenant — the hook the metrics layer uses to
	// attribute carbon (saved versus a run-at-origin counterfactual,
	// and per tenant). Fired immediately after OnPlace, in the same
	// deterministic order.
	OnPlaceDetail func(hour, jobID int, region, origin, tenantName string)
}

// state is the mutable per-job bookkeeping.
type state struct {
	Job
	progress   int
	region     string // current placement ("" before first run)
	ranLastHr  bool
	done       bool
	doneAt     int
	emissions  float64
	waitHours  int
	migrations int
}

func (st *state) preferredRegion() string {
	if st.region != "" {
		return st.region
	}
	return st.Origin
}

// NewFleet validates the world and returns an empty fleet at hour zero.
func NewFleet(set *trace.Set, clusters []Cluster, policy Policy, horizon int) (*Fleet, error) {
	if policy == nil {
		return nil, fmt.Errorf("sched: nil policy")
	}
	if horizon < 1 || horizon > set.Len() {
		return nil, fmt.Errorf("sched: horizon %d outside trace of %d hours", horizon, set.Len())
	}
	if len(clusters) == 0 {
		return nil, fmt.Errorf("sched: no clusters")
	}
	f := &Fleet{
		set:     set,
		policy:  policy,
		horizon: horizon,
		slots:   make(map[string]int, len(clusters)),
		byID:    make(map[int]*state),
		free:    make(map[string]int, len(clusters)),
	}
	for _, c := range clusters {
		if c.Slots < 1 {
			return nil, fmt.Errorf("sched: cluster %s has %d slots", c.Region, c.Slots)
		}
		if _, ok := set.Get(c.Region); !ok {
			return nil, fmt.Errorf("sched: cluster region %q not in trace set", c.Region)
		}
		if _, dup := f.slots[c.Region]; dup {
			return nil, fmt.Errorf("sched: duplicate cluster %s", c.Region)
		}
		f.slots[c.Region] = c.Slots
		f.regionsList = append(f.regionsList, c.Region)
		f.totalSlots += c.Slots
	}
	sort.Strings(f.regionsList)
	return f, nil
}

// SetFairQueue installs the tenant fair-dequeue engine. It must be
// set before the first Step (and before Unmarshal of an image that
// carries tenancy state); changing it mid-run would silently diverge
// placements from a replayed or replicated fleet.
func (f *Fleet) SetFairQueue(q *tenant.FairQueue) { f.fq = q }

// Hour returns the next hour the fleet will simulate.
func (f *Fleet) Hour() int { return f.hour }

// Horizon returns the exclusive final hour.
func (f *Fleet) Horizon() int { return f.horizon }

// Done reports whether the fleet has simulated its whole horizon.
func (f *Fleet) Done() bool { return f.hour >= f.horizon }

// Jobs returns the number of jobs submitted so far.
func (f *Fleet) Jobs() int { return len(f.states) }

// Regions lists the cluster regions in sorted order.
func (f *Fleet) Regions() []string {
	out := make([]string, len(f.regionsList))
	copy(out, f.regionsList)
	return out
}

// Slots returns the slot count of one region's cluster (0 if unknown).
func (f *Fleet) Slots(region string) int { return f.slots[region] }

// Submit adds jobs to the fleet. The call is atomic: on any validation
// error no job from the batch is admitted. Jobs may arrive at or after
// the fleet's current hour; submitting into the simulated past is an
// error.
func (f *Fleet) Submit(jobs ...Job) error {
	batch := make(map[int]struct{}, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if _, ok := f.slots[j.Origin]; !ok {
			return fmt.Errorf("sched: job %d origin %q has no cluster", j.ID, j.Origin)
		}
		if _, dup := f.byID[j.ID]; dup {
			return fmt.Errorf("sched: duplicate job id %d", j.ID)
		}
		if _, dup := batch[j.ID]; dup {
			return fmt.Errorf("sched: duplicate job id %d", j.ID)
		}
		if j.Arrival < f.hour {
			return fmt.Errorf("sched: job %d arrives at hour %d, before current hour %d", j.ID, j.Arrival, f.hour)
		}
		batch[j.ID] = struct{}{}
	}
	for _, j := range jobs {
		st := &state{Job: j}
		f.states = append(f.states, st)
		f.byID[j.ID] = st
	}
	return nil
}

// Step simulates the fleet's current hour and advances to the next. It
// errors past the horizon and on a misbehaving policy (unknown job or
// region, double placement, pinned migration, oversubscription).
func (f *Fleet) Step() error {
	if f.hour >= f.horizon {
		return fmt.Errorf("sched: horizon %d exhausted", f.horizon)
	}
	hour := f.hour
	ci := func(region string, h int) float64 { return f.set.MustGet(region).At(h) }
	for r, s := range f.slots {
		f.free[r] = s
	}
	for _, st := range f.states {
		st.ranLastHr = false
	}
	runNow := make(map[int]string) // job id -> region

	// Phase 1: forced continuations — a started non-interruptible
	// job occupies its slot until done.
	for _, st := range f.states {
		if st.done || st.progress == 0 || st.Interruptible {
			continue
		}
		runNow[st.ID] = st.region
		f.free[st.region]--
	}

	// Phase 2: deadline forcing — a job whose remaining slack is
	// zero must run every hour from now on. Try its current/origin
	// region, then (if migratable) anything with space.
	for _, st := range f.states {
		if st.done || st.Arrival > hour {
			continue
		}
		if _, already := runNow[st.ID]; already {
			continue
		}
		remaining := st.Length - st.progress
		if st.Deadline()-hour > remaining {
			continue // still has slack
		}
		region := st.preferredRegion()
		if f.free[region] <= 0 && st.Migratable {
			for _, r := range f.regionsList {
				if f.free[r] > 0 {
					region = r
					break
				}
			}
		}
		if f.free[region] > 0 {
			runNow[st.ID] = region
			f.free[region]--
		}
		// If nothing is free the job misses this hour — and
		// likely its deadline. That is the contention signal the
		// simulator exists to surface.
	}

	// Phase 3: policy placements for the flexible remainder.
	tick := &Tick{
		Hour:    hour,
		Regions: f.regionsList,
		CI:      func(region string) float64 { return ci(region, hour) },
		Lookback: func(region string, n int) []float64 {
			lo := hour - n
			if lo < 0 {
				lo = 0
			}
			return f.set.MustGet(region).CI[lo:hour]
		},
		FreeSlots: copySlots(f.free),
	}
	for _, st := range f.states {
		if st.done || st.Arrival > hour {
			continue
		}
		if _, already := runNow[st.ID]; already {
			continue
		}
		tick.Eligible = append(tick.Eligible, JobView{
			ID:              st.ID,
			Origin:          st.Origin,
			Tenant:          st.Tenant,
			Remaining:       st.Length - st.progress,
			HoursToDeadline: st.Deadline() - hour,
			Interruptible:   st.Interruptible,
			Migratable:      st.Migratable,
		})
	}
	tick.Eligible = fairOrder(f.fq, tick.Eligible)
	for _, p := range f.policy.Plan(tick) {
		st, ok := f.byID[p.JobID]
		if !ok {
			return fmt.Errorf("sched: policy %s placed unknown job %d", f.policy.Name(), p.JobID)
		}
		if st.done || st.Arrival > hour {
			return fmt.Errorf("sched: policy %s placed ineligible job %d", f.policy.Name(), p.JobID)
		}
		if _, already := runNow[st.ID]; already {
			return fmt.Errorf("sched: policy %s double-placed job %d", f.policy.Name(), p.JobID)
		}
		if _, ok := f.slots[p.Region]; !ok {
			return fmt.Errorf("sched: policy %s used unknown region %q", f.policy.Name(), p.Region)
		}
		if !st.Migratable && p.Region != st.Origin {
			return fmt.Errorf("sched: policy %s migrated pinned job %d", f.policy.Name(), st.ID)
		}
		if f.free[p.Region] <= 0 {
			return fmt.Errorf("sched: policy %s oversubscribed region %s", f.policy.Name(), p.Region)
		}
		runNow[st.ID] = p.Region
		f.free[p.Region]--
	}

	// Phase 4: advance the world one hour.
	for _, st := range f.states {
		if st.done || st.Arrival > hour {
			continue
		}
		region, running := runNow[st.ID]
		if !running {
			st.waitHours++
			continue
		}
		if st.region != "" && st.region != region {
			st.migrations++
		}
		st.region = region
		st.ranLastHr = true
		st.progress++
		st.emissions += ci(region, hour)
		f.slotHoursUsed++
		if f.fq != nil {
			f.fq.Charge(st.Tenant)
		}
		if f.OnPlace != nil {
			f.OnPlace(hour, st.ID, region)
		}
		if f.OnPlaceDetail != nil {
			f.OnPlaceDetail(hour, st.ID, region, st.Origin, st.Tenant)
		}
		if st.progress == st.Length {
			st.done = true
			st.doneAt = hour + 1
			f.completed++
		}
	}
	f.hour++
	return nil
}

// Outstanding returns the number of submitted jobs that have not yet
// completed, in O(1) — the backpressure signal for online admission.
func (f *Fleet) Outstanding() int { return len(f.states) - f.completed }

// Snapshot aggregates the fleet's outcomes so far into a Result, in job
// submission order. Once the fleet has stepped through its full horizon
// the result is byte-identical to what Run returns for the same inputs.
// An uncompleted job counts as missed once its deadline is at or before
// the current hour.
func (f *Fleet) Snapshot() Result {
	res := Result{
		Policy:         f.policy.Name(),
		SlotHoursUsed:  f.slotHoursUsed,
		SlotHoursTotal: float64(f.totalSlots * f.horizon),
	}
	for _, st := range f.states {
		out := Outcome{
			Job:        st.Job,
			Completed:  st.done,
			Emissions:  st.emissions,
			WaitHours:  st.waitHours,
			Migrations: st.migrations,
		}
		if st.done {
			out.CompletedAt = st.doneAt
			out.MissedDeadline = st.doneAt > st.Deadline()
			res.Completed++
		} else {
			out.MissedDeadline = st.Deadline() <= f.hour
		}
		if out.MissedDeadline {
			res.Missed++
		}
		res.TotalEmissions += st.emissions
		res.Outcomes = append(res.Outcomes, out)
	}
	if res.Completed > 0 {
		var wait float64
		for _, o := range res.Outcomes {
			if o.Completed {
				wait += float64(o.WaitHours)
			}
		}
		res.MeanWaitHours = wait / float64(res.Completed)
	}
	return res
}

// JobInfo is the live view of one submitted job.
type JobInfo struct {
	Job
	// Remaining is the run-hours still needed.
	Remaining int
	// Region is the most recent placement ("" before the first run).
	Region string
	// Running reports whether the job ran in the most recent Step.
	Running bool
	// Completed and CompletedAt mirror Outcome.
	Completed   bool
	CompletedAt int
	// MissedDeadline is true for a late completion or an uncompleted
	// job whose deadline has passed.
	MissedDeadline bool
	Emissions      float64
	WaitHours      int
	Migrations     int
}

// Lookup returns the live view of a submitted job.
func (f *Fleet) Lookup(id int) (JobInfo, bool) {
	st, ok := f.byID[id]
	if !ok {
		return JobInfo{}, false
	}
	info := JobInfo{
		Job:        st.Job,
		Remaining:  st.Length - st.progress,
		Region:     st.region,
		Running:    st.ranLastHr,
		Completed:  st.done,
		Emissions:  st.emissions,
		WaitHours:  st.waitHours,
		Migrations: st.migrations,
	}
	if st.done {
		info.CompletedAt = st.doneAt
		info.MissedDeadline = st.doneAt > st.Deadline()
	} else {
		info.MissedDeadline = st.Deadline() <= f.hour
	}
	return info, true
}

// FleetStats is a cheap aggregate for monitoring (internal/schedd's
// /v1/stats): one pass over the jobs, no per-job allocation. Unlike
// Snapshot, SlotHoursTotal covers only the hours simulated so far, so
// Utilization reflects elapsed time rather than the full horizon.
// Unresolved counts every submitted-but-uncompleted job, including
// overdue ones that are still running toward a late finish.
type FleetStats struct {
	Hour, Horizon                 int
	Submitted, Completed, Missed  int
	Running, Queued, Unresolved   int
	TotalEmissions                float64
	SlotHoursUsed, SlotHoursTotal float64
}

// Utilization returns used/elapsed slot-hours.
func (s FleetStats) Utilization() float64 {
	if s.SlotHoursTotal == 0 {
		return 0
	}
	return s.SlotHoursUsed / s.SlotHoursTotal
}

// Stats summarizes the fleet's current state.
func (f *Fleet) Stats() FleetStats {
	st := FleetStats{
		Hour:           f.hour,
		Horizon:        f.horizon,
		Submitted:      len(f.states),
		SlotHoursUsed:  f.slotHoursUsed,
		SlotHoursTotal: float64(f.totalSlots * f.hour),
	}
	for _, s := range f.states {
		st.TotalEmissions += s.emissions
		if s.done {
			st.Completed++
			if s.doneAt > s.Deadline() {
				st.Missed++
			}
			continue
		}
		st.Unresolved++
		if s.Deadline() <= f.hour {
			st.Missed++
		}
		if s.ranLastHr {
			st.Running++
		} else {
			st.Queued++
		}
	}
	return st
}

func copySlots(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// fairOrder applies the fair queue's dequeue permutation to one
// hour's eligible list (identity when no queue is installed).
func fairOrder(q *tenant.FairQueue, eligible []JobView) []JobView {
	if q == nil || len(eligible) < 2 {
		return eligible
	}
	names := make([]string, len(eligible))
	for i, v := range eligible {
		names[i] = v.Tenant
	}
	perm := q.Order(names)
	out := make([]JobView, len(eligible))
	for k, i := range perm {
		out[k] = eligible[i]
	}
	return out
}

// TenantStat aggregates one tenant's jobs (FleetStats semantics,
// sliced per tenant, plus executed slot-hours — the fair-share
// denominator).
type TenantStat struct {
	Submitted, Completed, Missed int
	Running, Queued, Unresolved  int
	SlotHours                    int
	Emissions                    float64
}

func tenantStats(states []*state, hour int) map[string]TenantStat {
	out := make(map[string]TenantStat)
	for _, s := range states {
		name := tenant.Normalize(s.Tenant)
		ts := out[name]
		ts.Submitted++
		ts.SlotHours += s.progress
		ts.Emissions += s.emissions
		if s.done {
			ts.Completed++
			if s.doneAt > s.Deadline() {
				ts.Missed++
			}
		} else {
			ts.Unresolved++
			if s.Deadline() <= hour {
				ts.Missed++
			}
			if s.ranLastHr {
				ts.Running++
			} else {
				ts.Queued++
			}
		}
		out[name] = ts
	}
	return out
}

// TenantStats aggregates the fleet's jobs per (normalized) tenant.
func (f *Fleet) TenantStats() map[string]TenantStat {
	return tenantStats(f.states, f.hour)
}

func tenantArrivals(states []*state, hour int) map[string]int {
	out := make(map[string]int)
	for _, s := range states {
		if s.Arrival == hour {
			out[tenant.Normalize(s.Tenant)]++
		}
	}
	return out
}

// TenantArrivals counts jobs per (normalized) tenant that arrived at
// the given hour — the seed for rebuilding admission-quota windows
// after crash recovery or follower promotion.
func (f *Fleet) TenantArrivals(hour int) map[string]int {
	return tenantArrivals(f.states, hour)
}
