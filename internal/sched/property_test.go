package sched

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"carbonshift/internal/rng"
	"carbonshift/internal/trace"
)

// placement is one executed job-hour as seen by the OnPlace recorder.
type placement struct {
	hour, job int
	region    string
}

// checkInvariants asserts the structural scheduling invariants over a
// finished fleet's placement log and result:
//
//   - no region ever runs more jobs in an hour than it has slots;
//   - pinned (non-migratable) jobs only ever run in their origin;
//   - a started non-interruptible job runs every hour until done;
//   - per-job emissions are non-negative, equal the sum of the carbon
//     intensity over the job's executed hours (monotone in completed
//     work on non-negative traces), and completed jobs executed
//     exactly Length hours.
func checkInvariants(t *testing.T, world worldSpec, log []placement, res Result) {
	t.Helper()
	slots := make(map[string]int)
	for _, c := range world.clusters {
		slots[c.Region] = c.Slots
	}
	jobs := make(map[int]Job)
	for _, o := range res.Outcomes {
		jobs[o.ID] = o.Job
	}

	type hourRegion struct {
		hour   int
		region string
	}
	load := make(map[hourRegion]int)
	perJob := make(map[int][]placement)
	for i, p := range log {
		if i > 0 && p.hour < log[i-1].hour {
			t.Fatalf("placement log goes backwards at %d: %+v after %+v", i, p, log[i-1])
		}
		load[hourRegion{p.hour, p.region}]++
		if got, max := load[hourRegion{p.hour, p.region}], slots[p.region]; got > max {
			t.Fatalf("hour %d: region %s oversubscribed (%d > %d slots)", p.hour, p.region, got, max)
		}
		j, ok := jobs[p.job]
		if !ok {
			t.Fatalf("placement for unknown job %d", p.job)
		}
		if !j.Migratable && p.region != j.Origin {
			t.Fatalf("pinned job %d ran in %s, origin %s", j.ID, p.region, j.Origin)
		}
		perJob[p.job] = append(perJob[p.job], p)
	}

	for _, o := range res.Outcomes {
		hours := perJob[o.ID]
		if o.Completed && len(hours) != o.Length {
			t.Fatalf("completed job %d executed %d hours, length %d", o.ID, len(hours), o.Length)
		}
		if !o.Completed && len(hours) >= o.Length {
			t.Fatalf("uncompleted job %d executed %d hours, length %d", o.ID, len(hours), o.Length)
		}
		if !o.Interruptible && len(hours) > 0 {
			for i := 1; i < len(hours); i++ {
				if hours[i].hour != hours[i-1].hour+1 {
					t.Fatalf("non-interruptible job %d paused between hours %d and %d",
						o.ID, hours[i-1].hour, hours[i].hour)
				}
			}
		}
		if o.Emissions < 0 {
			t.Fatalf("job %d has negative emissions %v", o.ID, o.Emissions)
		}
		// Emissions must be monotone in completed work: on a
		// non-negative trace the cumulative sum over the executed hours
		// is non-decreasing, and the final value must equal the outcome.
		var cum, prev float64
		for _, p := range hours {
			cum += world.set.MustGet(p.region).At(p.hour)
			if cum < prev {
				t.Fatalf("job %d emissions decreased mid-run", o.ID)
			}
			prev = cum
		}
		if math.Abs(cum-o.Emissions) > 1e-9*(1+math.Abs(cum)) {
			t.Fatalf("job %d emissions %v, recomputed %v", o.ID, o.Emissions, cum)
		}
	}
}

type worldSpec struct {
	set      *trace.Set
	clusters []Cluster
}

// TestSchedulingInvariants drives randomized worlds (seeded jobs ×
// every policy × varying horizons and shard counts) through both the
// serial Fleet and the ShardedFleet, asserting the invariants above on
// each and deep equality between the two.
func TestSchedulingInvariants(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			src := rng.New(seed)
			nRegions := 2 + src.Intn(6)
			horizon := 24 * (4 + src.Intn(8))
			set, clusters, origins := mkWideSet(t, horizon, nRegions)
			spec := WorkloadSpec{
				Jobs:              40 + src.Intn(120),
				ArrivalSpan:       horizon * 3 / 4,
				SlackHours:        src.Intn(48),
				InterruptibleFrac: src.Float64(),
				MigratableFrac:    src.Float64(),
				Origins:           origins,
				Seed:              seed * 1000,
			}
			jobs, err := GenerateJobs(spec)
			if err != nil {
				t.Fatal(err)
			}
			maxLen := 1 + src.Intn(36)
			for i := range jobs {
				if jobs[i].Length > maxLen {
					jobs[i].Length = maxLen
				}
			}
			world := worldSpec{set: set, clusters: clusters}
			shards := 1 + src.Intn(7)

			for _, policy := range allPolicies() {
				policy := policy
				t.Run(policy.Name(), func(t *testing.T) {
					var serialLog []placement
					ref, err := NewFleet(set, clusters, policy, horizon)
					if err != nil {
						t.Fatal(err)
					}
					ref.OnPlace = func(h, id int, r string) {
						serialLog = append(serialLog, placement{h, id, r})
					}
					if err := ref.Submit(jobs...); err != nil {
						t.Fatal(err)
					}
					driveFleet(t, ref)
					refRes := ref.Snapshot()
					checkInvariants(t, world, serialLog, refRes)

					var shardLog []placement
					sf, err := NewShardedFleet(set, clusters, policy, horizon, shards)
					if err != nil {
						t.Fatal(err)
					}
					sf.OnPlace = func(h, id int, r string) {
						shardLog = append(shardLog, placement{h, id, r})
					}
					if err := sf.Submit(jobs...); err != nil {
						t.Fatal(err)
					}
					driveFleet(t, sf)
					shardRes := sf.Snapshot()
					checkInvariants(t, world, shardLog, shardRes)

					if !reflect.DeepEqual(serialLog, shardLog) {
						t.Fatalf("placement logs diverge (%d vs %d records, %d shards)",
							len(serialLog), len(shardLog), shards)
					}
					if !reflect.DeepEqual(refRes, shardRes) {
						t.Fatalf("results diverge at %d shards", shards)
					}
				})
			}
		})
	}
}
