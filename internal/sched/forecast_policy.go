package sched

import (
	"carbonshift/internal/forecast"
	"carbonshift/internal/stats"
)

// ForecastGate is the deployable version of CarbonGate: instead of
// comparing the current intensity against a *trailing* percentile (a
// backward-looking proxy), it forecasts the next day from the trailing
// window with a real model and runs only when the current hour is
// among the predicted-cheapest hours ahead. This is how a production
// scheduler consuming a carbon-information API (internal/carbonapi)
// would actually decide, and it sees no future data.
type ForecastGate struct {
	// Model produces the day-ahead view; nil means forecast.Blended.
	Model forecast.Forecaster
	// Percentile in (0, 100): run when the current intensity is at or
	// below this percentile of the forecast horizon.
	Percentile float64
	// HistoryHours is how much trailing data to feed the model
	// (default 21 days).
	HistoryHours int
	// HorizonHours is the forecast lookahead (default 24).
	HorizonHours int
}

// Name implements Policy.
func (ForecastGate) Name() string { return "forecast-gate" }

func (p ForecastGate) model() forecast.Forecaster {
	if p.Model == nil {
		return forecast.Blended{}
	}
	return p.Model
}

func (p ForecastGate) history() int {
	if p.HistoryHours <= 0 {
		return 21 * 24
	}
	return p.HistoryHours
}

func (p ForecastGate) horizon() int {
	if p.HorizonHours <= 0 {
		return 24
	}
	return p.HorizonHours
}

// Plan implements Policy.
func (p ForecastGate) Plan(t *Tick) []Placement {
	thresholds := make(map[string]float64)
	threshold := func(region string) float64 {
		if v, ok := thresholds[region]; ok {
			return v
		}
		// Without enough history for the model, run unconditionally
		// (equivalent to FIFO during warmup).
		v := t.CI(region)
		history := t.Lookback(region, p.history())
		if pred, err := p.model().Forecast(history, p.horizon()); err == nil && len(pred) > 0 {
			v = stats.Percentile(pred, p.Percentile)
		}
		thresholds[region] = v
		return v
	}
	var out []Placement
	for _, j := range t.Eligible {
		if t.FreeSlots[j.Origin] <= 0 {
			continue
		}
		urgent := j.SlackLeft() <= 1
		if !urgent && t.CI(j.Origin) > threshold(j.Origin) {
			continue
		}
		out = append(out, Placement{JobID: j.ID, Region: j.Origin})
		t.FreeSlots[j.Origin]--
	}
	return out
}
