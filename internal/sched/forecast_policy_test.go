package sched

import (
	"testing"

	"carbonshift/internal/regions"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/trace"
)

func TestForecastGateDefaults(t *testing.T) {
	p := ForecastGate{}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
	if p.model() == nil || p.history() != 21*24 || p.horizon() != 24 {
		t.Fatalf("defaults wrong: %d %d", p.history(), p.horizon())
	}
}

func TestForecastGateRunsDuringWarmup(t *testing.T) {
	// With no history the gate must not deadlock jobs.
	set := mkSet(t, 24*5)
	jobs := []Job{{ID: 1, Origin: "DIRTY", Arrival: 0, Length: 3, Slack: 60, Interruptible: true}}
	res, err := Run(set, clusters(1), jobs, ForecastGate{Percentile: 30}, 24*5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Missed != 0 {
		t.Fatalf("completed %d missed %d", res.Completed, res.Missed)
	}
}

// TestForecastGateBeatsFIFOOnRealTrace is the end-to-end check: on a
// simulated grid with a real diurnal cycle, the forecast-driven gate
// must cut emissions versus FIFO while meeting all deadlines — using
// only past data.
func TestForecastGateBeatsFIFOOnRealTrace(t *testing.T) {
	tr, err := simgrid.GenerateRegion(regions.MustByCode("US-CA"),
		simgrid.Config{Seed: 13, Hours: 24 * 90})
	if err != nil {
		t.Fatal(err)
	}
	set, err := trace.NewSet([]*trace.Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := GenerateJobs(WorkloadSpec{
		Jobs:              120,
		ArrivalSpan:       24 * 60,
		SlackHours:        48,
		InterruptibleFrac: 1,
		MigratableFrac:    0,
		Origins:           []string{"US-CA"},
		Seed:              13,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Length > 24 {
			jobs[i].Length = 24
		}
		// Start arrivals after the model's warmup so the gate has
		// history to forecast from.
		jobs[i].Arrival += 22 * 24
	}
	cl := []Cluster{{Region: "US-CA", Slots: 60}}
	fifo, err := Run(set, cl, jobs, FIFO{}, 24*90)
	if err != nil {
		t.Fatal(err)
	}
	gate, err := Run(set, cl, jobs, ForecastGate{Percentile: 30}, 24*90)
	if err != nil {
		t.Fatal(err)
	}
	if gate.Missed != 0 {
		t.Fatalf("forecast gate missed %d deadlines", gate.Missed)
	}
	if gate.TotalEmissions >= fifo.TotalEmissions {
		t.Fatalf("forecast gate (%v) not below FIFO (%v)", gate.TotalEmissions, fifo.TotalEmissions)
	}
	saving := (fifo.TotalEmissions - gate.TotalEmissions) / fifo.TotalEmissions
	if saving < 0.05 {
		t.Fatalf("forecast gate saving only %.1f%%, expected meaningful savings on a solar-heavy grid", 100*saving)
	}
}

// TestForecastGateNearClairvoyantGate compares the deployable policy
// against the trailing-percentile CarbonGate: they should land in the
// same savings band.
func TestForecastGateNearClairvoyantGate(t *testing.T) {
	tr, err := simgrid.GenerateRegion(regions.MustByCode("DE"),
		simgrid.Config{Seed: 17, Hours: 24 * 90})
	if err != nil {
		t.Fatal(err)
	}
	set, err := trace.NewSet([]*trace.Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := GenerateJobs(WorkloadSpec{
		Jobs:              80,
		ArrivalSpan:       24 * 55,
		SlackHours:        48,
		InterruptibleFrac: 1,
		MigratableFrac:    0,
		Origins:           []string{"DE"},
		Seed:              17,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Length > 24 {
			jobs[i].Length = 24
		}
		jobs[i].Arrival += 22 * 24
	}
	cl := []Cluster{{Region: "DE", Slots: 40}}
	trailing, err := Run(set, cl, jobs, CarbonGate{Percentile: 30, Window: 168}, 24*90)
	if err != nil {
		t.Fatal(err)
	}
	forecastRes, err := Run(set, cl, jobs, ForecastGate{Percentile: 30}, 24*90)
	if err != nil {
		t.Fatal(err)
	}
	ratio := forecastRes.TotalEmissions / trailing.TotalEmissions
	if ratio > 1.25 {
		t.Fatalf("forecast gate %.0f vs trailing gate %.0f (ratio %.2f): model-driven policy far off",
			forecastRes.TotalEmissions, trailing.TotalEmissions, ratio)
	}
}
