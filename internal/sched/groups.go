package sched

import (
	"fmt"
	"sort"
)

// SetRegionGroups partitions the fleet's regions into disjoint
// contention groups: slot spillover (deadline forcing of migratable
// jobs) and policy placement never cross a group boundary, and each
// Step runs the policy once per group over a group-local Tick (that
// group's regions, free slots, and eligible jobs, in global submission
// order). A job belongs to its origin's group for its whole life.
//
// This is the scheduling-level contract behind service partitioning:
// a grouped fleet over the full world produces, region group by region
// group, exactly the placements that independent fleets over each
// group's sub-world would produce for the same arrival order — slot
// contention cannot cross a boundary, the per-hour carbon intensities
// seen by a group depend only on its own traces, and the five shipped
// policies are stateless between Plan calls. TestRegionGroupEquivalence
// pins that argument.
//
// Every fleet region must appear in exactly one non-empty group. The
// call must happen before the first Submit or Step (same contract as
// SetFairQueue); when restoring with Unmarshal, set the groups first
// and only restore snapshots taken under the same grouping. The
// default — no call — is a single group holding every region, which is
// byte-identical to the ungrouped behavior.
func (f *ShardedFleet) SetRegionGroups(groups [][]string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hour != 0 || f.submitted.Load() != 0 {
		return fmt.Errorf("sched: SetRegionGroups after first Submit or Step")
	}
	if len(groups) == 0 {
		return fmt.Errorf("sched: no region groups")
	}
	groupOf := make([]int, len(f.regionsList))
	for i := range groupOf {
		groupOf[i] = -1
	}
	regions := make([][]int, len(groups))
	names := make([][]string, len(groups))
	for gi, g := range groups {
		if len(g) == 0 {
			return fmt.Errorf("sched: region group %d is empty", gi)
		}
		for _, r := range g {
			ri, ok := f.regionIdx[r]
			if !ok {
				return fmt.Errorf("sched: region group %d names unknown region %q", gi, r)
			}
			if groupOf[ri] != -1 {
				return fmt.Errorf("sched: region %q in more than one group", r)
			}
			groupOf[ri] = gi
			regions[gi] = append(regions[gi], ri)
		}
		sort.Ints(regions[gi])
		for _, ri := range regions[gi] {
			names[gi] = append(names[gi], f.regionsList[ri])
		}
	}
	for ri, gi := range groupOf {
		if gi == -1 {
			return fmt.Errorf("sched: region %q not in any group", f.regionsList[ri])
		}
	}
	f.groupOf = groupOf
	f.groupRegions = regions
	f.groupNames = names
	return nil
}

// RegionGroups returns the configured groups as sorted region-name
// lists, in group order. With no SetRegionGroups call it is the single
// implicit group of every region.
func (f *ShardedFleet) RegionGroups() [][]string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([][]string, len(f.groupNames))
	for gi, g := range f.groupNames {
		out[gi] = append([]string(nil), g...)
	}
	return out
}
