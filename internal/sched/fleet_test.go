package sched

import (
	"reflect"
	"strings"
	"testing"
)

// allPolicies is the full policy roster the equivalence checks cover.
func allPolicies() []Policy {
	return []Policy{
		FIFO{},
		CarbonGate{Percentile: 40, Window: 48},
		ForecastGate{Percentile: 40},
		GreenestFirst{},
		SpatioTemporal{Percentile: 40, Window: 48},
	}
}

func fleetJobs(t *testing.T) []Job {
	t.Helper()
	jobs, err := GenerateJobs(WorkloadSpec{
		Jobs:              80,
		ArrivalSpan:       24 * 10,
		SlackHours:        36,
		InterruptibleFrac: 0.7,
		MigratableFrac:    0.5,
		Origins:           []string{"CLEAN", "DIRTY"},
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Length > 48 {
			jobs[i].Length = 48
		}
	}
	return jobs
}

// TestFleetMatchesRun drives a Fleet tick by tick with all jobs
// submitted up front and checks the snapshot is deeply identical to the
// batch Run for every policy.
func TestFleetMatchesRun(t *testing.T) {
	set := mkSet(t, 24*15)
	jobs := fleetJobs(t)
	for _, p := range allPolicies() {
		want, err := Run(set, clusters(20), jobs, p, 24*15)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFleet(set, clusters(20), p, 24*15)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Submit(jobs...); err != nil {
			t.Fatal(err)
		}
		for !f.Done() {
			if err := f.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if got := f.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: fleet snapshot differs from Run result", p.Name())
		}
	}
}

// TestFleetOnlineSubmission submits each job exactly at its arrival
// hour, the way the HTTP service does, and still matches the batch run.
func TestFleetOnlineSubmission(t *testing.T) {
	set := mkSet(t, 24*15)
	jobs := fleetJobs(t)
	for _, p := range allPolicies() {
		want, err := Run(set, clusters(20), jobs, p, 24*15)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFleet(set, clusters(20), p, 24*15)
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		for !f.Done() {
			for next < len(jobs) && jobs[next].Arrival == f.Hour() {
				if err := f.Submit(jobs[next]); err != nil {
					t.Fatal(err)
				}
				next++
			}
			if err := f.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if next != len(jobs) {
			t.Fatalf("%s: only %d/%d jobs submitted", p.Name(), next, len(jobs))
		}
		if got := f.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: online submission snapshot differs from Run result", p.Name())
		}
	}
}

func TestFleetSubmitValidation(t *testing.T) {
	set := mkSet(t, 50)
	f, err := NewFleet(set, clusters(1), FIFO{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(Job{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 0}); err == nil {
		t.Error("zero-length job accepted")
	}
	if err := f.Submit(Job{ID: 1, Origin: "NOPE", Arrival: 0, Length: 1}); err == nil {
		t.Error("orphan origin accepted")
	}
	// A batch with an internal duplicate must be rejected atomically.
	err = f.Submit(
		Job{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 1},
		Job{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 1},
	)
	if err == nil {
		t.Error("intra-batch duplicate accepted")
	}
	if f.Jobs() != 0 {
		t.Fatalf("failed batch admitted %d jobs", f.Jobs())
	}
	if err := f.Submit(Job{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(Job{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 1}); err == nil {
		t.Error("cross-batch duplicate accepted")
	}
	if err := f.Step(); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(Job{ID: 2, Origin: "CLEAN", Arrival: 0, Length: 1}); err == nil ||
		!strings.Contains(err.Error(), "before current hour") {
		t.Errorf("past-arrival submission: err = %v", err)
	}
}

func TestFleetStepPastHorizon(t *testing.T) {
	set := mkSet(t, 50)
	f, err := NewFleet(set, clusters(1), FIFO{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for !f.Done() {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Step(); err == nil {
		t.Error("step past horizon accepted")
	}
}

func TestFleetLookupAndStats(t *testing.T) {
	set := mkSet(t, 100)
	f, err := NewFleet(set, clusters(1), FIFO{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Lookup(9); ok {
		t.Error("lookup of unknown job succeeded")
	}
	if err := f.Submit(
		Job{ID: 1, Origin: "DIRTY", Arrival: 0, Length: 2, Slack: 10},
		Job{ID: 2, Origin: "DIRTY", Arrival: 0, Length: 3, Slack: 10},
	); err != nil {
		t.Fatal(err)
	}
	// One slot: FIFO runs job 1 first, job 2 queues.
	if err := f.Step(); err != nil {
		t.Fatal(err)
	}
	j1, ok := f.Lookup(1)
	if !ok || !j1.Running || j1.Remaining != 1 || j1.Region != "DIRTY" {
		t.Fatalf("job 1 after first hour: %+v", j1)
	}
	j2, _ := f.Lookup(2)
	if j2.Running || j2.WaitHours != 1 {
		t.Fatalf("job 2 after first hour: %+v", j2)
	}
	st := f.Stats()
	if st.Submitted != 2 || st.Running != 1 || st.Queued != 1 || st.Completed != 0 {
		t.Fatalf("stats after first hour: %+v", st)
	}
	if st.SlotHoursUsed != 1 || st.SlotHoursTotal != 2 {
		t.Fatalf("slot hours: %+v", st)
	}
	for i := 0; i < 4; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	j1, _ = f.Lookup(1)
	if !j1.Completed || j1.CompletedAt != 2 || j1.MissedDeadline {
		t.Fatalf("job 1 final: %+v", j1)
	}
	st = f.Stats()
	if st.Completed != 2 || st.Unresolved != 0 || st.Missed != 0 {
		t.Fatalf("final stats: %+v", st)
	}
	if st.TotalEmissions != f.Snapshot().TotalEmissions {
		t.Fatal("stats emissions disagree with snapshot")
	}
}

// TestFleetOnPlace checks the placement recorder sees every executed
// job-hour, in order, and that the total matches slot-hours used.
func TestFleetOnPlace(t *testing.T) {
	set := mkSet(t, 24*15)
	jobs := fleetJobs(t)
	f, err := NewFleet(set, clusters(20), GreenestFirst{}, 24*15)
	if err != nil {
		t.Fatal(err)
	}
	type placeRec struct {
		hour, job int
		region    string
	}
	var log []placeRec
	f.OnPlace = func(hour, jobID int, region string) {
		log = append(log, placeRec{hour, jobID, region})
	}
	if err := f.Submit(jobs...); err != nil {
		t.Fatal(err)
	}
	for !f.Done() {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res := f.Snapshot()
	if float64(len(log)) != res.SlotHoursUsed {
		t.Fatalf("recorded %d placements, used %v slot-hours", len(log), res.SlotHoursUsed)
	}
	for i := 1; i < len(log); i++ {
		if log[i].hour < log[i-1].hour {
			t.Fatal("placement log not ordered by hour")
		}
	}
}
