package sched

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// groupSplit slices the 8 mkWideSet regions into n contiguous groups.
func groupSplit(origins []string, n int) [][]string {
	groups := make([][]string, n)
	for i, r := range origins {
		groups[i%n] = append(groups[i%n], r)
	}
	return groups
}

// TestRegionGroupEquivalence is the scheduling half of the partitioned
// service's correctness argument: a grouped ShardedFleet over the full
// world must produce, group by group, exactly the placements and
// outcomes that independent fleets over each group's sub-world produce
// for the same jobs in the same arrival order. With that, routing a
// region group to its own schedd partition cannot change a single
// placement.
func TestRegionGroupEquivalence(t *testing.T) {
	const horizon = 24 * 10
	set, cl, origins := mkWideSet(t, horizon, 8)
	jobs, err := GenerateJobs(WorkloadSpec{
		Jobs:              280,
		ArrivalSpan:       24 * 8,
		SlackHours:        24,
		InterruptibleFrac: 0.6,
		MigratableFrac:    0.5,
		Origins:           origins,
		Seed:              17,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Length > 30 {
			jobs[i].Length = 30
		}
	}

	type placeRec struct {
		hour, job int
		region    string
	}
	for _, policy := range allPolicies() {
		for _, n := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/groups=%d", policy.Name(), n), func(t *testing.T) {
				groups := groupSplit(origins, n)
				groupOf := map[string]int{}
				for gi, g := range groups {
					for _, r := range g {
						groupOf[r] = gi
					}
				}

				// The grouped full-world fleet.
				grouped, err := NewShardedFleet(set, cl, policy, horizon, 4)
				if err != nil {
					t.Fatal(err)
				}
				if err := grouped.SetRegionGroups(groups); err != nil {
					t.Fatal(err)
				}
				gotLog := make([][]placeRec, n)
				grouped.OnPlace = func(hour, jobID int, region string) {
					gi := groupOf[region]
					gotLog[gi] = append(gotLog[gi], placeRec{hour, jobID, region})
				}
				if err := grouped.Submit(jobs...); err != nil {
					t.Fatal(err)
				}
				driveFleet(t, grouped)
				gotOutcomes := make(map[int][]Outcome, n)
				for _, o := range grouped.Snapshot().Outcomes {
					gi := groupOf[o.Origin]
					gotOutcomes[gi] = append(gotOutcomes[gi], o)
				}

				// One independent, ungrouped fleet per sub-world, fed
				// only its group's jobs in the same relative order.
				for gi, g := range groups {
					inGroup := map[string]bool{}
					var subCl []Cluster
					for _, c := range cl {
						if groupOf[c.Region] == gi {
							subCl = append(subCl, c)
							inGroup[c.Region] = true
						}
					}
					var subJobs []Job
					for _, j := range jobs {
						if inGroup[j.Origin] {
							subJobs = append(subJobs, j)
						}
					}
					sub, err := NewShardedFleet(set, subCl, policy, horizon, 2)
					if err != nil {
						t.Fatal(err)
					}
					var subLog []placeRec
					sub.OnPlace = func(hour, jobID int, region string) {
						subLog = append(subLog, placeRec{hour, jobID, region})
					}
					if err := sub.Submit(subJobs...); err != nil {
						t.Fatal(err)
					}
					driveFleet(t, sub)
					if !reflect.DeepEqual(gotLog[gi], subLog) {
						t.Fatalf("group %d (%v): placement log differs: %d grouped records vs %d independent",
							gi, g, len(gotLog[gi]), len(subLog))
					}
					if subOut := sub.Snapshot().Outcomes; !reflect.DeepEqual(gotOutcomes[gi], subOut) {
						t.Fatalf("group %d (%v): outcomes differ: %d grouped vs %d independent",
							gi, g, len(gotOutcomes[gi]), len(subOut))
					}
				}
			})
		}
	}
}

func TestSetRegionGroupsValidation(t *testing.T) {
	set, cl, origins := mkWideSet(t, 48, 4)
	mk := func() *ShardedFleet {
		f, err := NewShardedFleet(set, cl, FIFO{}, 48, 2)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	cases := []struct {
		name   string
		groups [][]string
		want   string
	}{
		{"empty", nil, "no region groups"},
		{"empty group", [][]string{origins, {}}, "is empty"},
		{"unknown region", [][]string{{"R00", "R01"}, {"R02", "NOPE"}}, "unknown region"},
		{"overlap", [][]string{{"R00", "R01"}, {"R01", "R02", "R03"}}, "more than one group"},
		{"uncovered", [][]string{{"R00", "R01"}, {"R02"}}, "not in any group"},
	}
	for _, tc := range cases {
		f := mk()
		err := f.SetRegionGroups(tc.groups)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	f := mk()
	if err := f.SetRegionGroups([][]string{{"R01", "R00"}, {"R03", "R02"}}); err != nil {
		t.Fatal(err)
	}
	if got := f.RegionGroups(); !reflect.DeepEqual(got, [][]string{{"R00", "R01"}, {"R02", "R03"}}) {
		t.Fatalf("RegionGroups = %v", got)
	}
	if err := f.Submit(Job{ID: 1, Origin: "R00", Arrival: 0, Length: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.SetRegionGroups([][]string{origins}); err == nil ||
		!strings.Contains(err.Error(), "after first Submit") {
		t.Errorf("late SetRegionGroups: err = %v", err)
	}
}
