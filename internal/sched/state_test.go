package sched

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"carbonshift/internal/tenant"
)

var update = flag.Bool("update", false, "rewrite golden files")

// stateJobs is a small deterministic mix covering every flag
// combination: pinned, migratable, interruptible, and a future arrival.
func stateJobs() []Job {
	return []Job{
		{ID: 3, Origin: "DIRTY", Arrival: 0, Length: 4, Slack: 24, Interruptible: true, Migratable: true},
		{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 2, Slack: 0},
		{ID: 8, Origin: "DIRTY", Arrival: 2, Length: 6, Slack: 48, Interruptible: true},
		{ID: 5, Origin: "DIRTY", Arrival: 1, Length: 1, Slack: 2, Migratable: true},
		{ID: 9, Origin: "CLEAN", Arrival: 30, Length: 3, Slack: 12, Interruptible: true, Migratable: true},
	}
}

// stateJobsTenants is stateJobs with tenant tags: two named tenants of
// different classes plus untagged (default-tenant) jobs.
func stateJobsTenants() []Job {
	jobs := stateJobs()
	jobs[0].Tenant = "web"
	jobs[2].Tenant = "spot"
	jobs[3].Tenant = "web"
	return jobs
}

// goldenTenantConfig is the fixed tenancy world the v2 golden pins.
func goldenTenantConfig(t *testing.T) *tenant.Config {
	t.Helper()
	cfg, err := tenant.NewConfig([]tenant.Spec{
		{Name: "web", Class: tenant.Interactive},
		{Name: "spot", Class: tenant.Scavenger},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestStateRoundTripMidRun: marshal a fleet mid-run, restore into a
// fresh fleet, run both to the horizon — placements, Result, and the
// final serialized state must be byte-identical, for the serial Fleet,
// the ShardedFleet at several shard counts, and cross-form restores.
func TestStateRoundTripMidRun(t *testing.T) {
	const horizon, cut = 24 * 8, 50
	set := mkSet(t, horizon)
	jobs, err := GenerateJobs(WorkloadSpec{
		Jobs: 60, ArrivalSpan: horizon - 48, SlackHours: 36,
		InterruptibleFrac: 0.6, MigratableFrac: 0.5,
		Origins: []string{"CLEAN", "DIRTY"}, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	policy := SpatioTemporal{Percentile: 40, Window: 48}

	type fleetLike interface {
		Submit(...Job) error
		Step() error
		Done() bool
		Snapshot() Result
		Marshal() ([]byte, error)
		Unmarshal([]byte) error
	}
	mk := map[string]func() fleetLike{
		"serial": func() fleetLike {
			f, err := NewFleet(set, clusters(6), policy, horizon)
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		"sharded1": func() fleetLike {
			f, err := NewShardedFleet(set, clusters(6), policy, horizon, 1)
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		"sharded4": func() fleetLike {
			f, err := NewShardedFleet(set, clusters(6), policy, horizon, 4)
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
	}

	run := func(f fleetLike, to int) {
		t.Helper()
		for i := 0; i < to; i++ {
			if err := f.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}

	for name, build := range mk {
		for restoreName, buildRestore := range mk {
			t.Run(name+"->"+restoreName, func(t *testing.T) {
				ref := build()
				if err := ref.Submit(jobs...); err != nil {
					t.Fatal(err)
				}
				run(ref, cut)
				mid, err := ref.Marshal()
				if err != nil {
					t.Fatal(err)
				}

				// Restore the mid-run image into a fresh fleet of the
				// target form.
				restored := buildRestore()
				if err := restored.Unmarshal(mid); err != nil {
					t.Fatal(err)
				}
				// Immediately re-marshaling must reproduce the image
				// exactly when the forms match (the sharded forms share
				// one layout; the serial form flattens lastRun).
				if name == restoreName {
					again, err := restored.Marshal()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(mid, again) {
						t.Fatal("restore + re-marshal is not byte-identical")
					}
				}

				// Run both to the horizon: identical outcomes.
				run(ref, horizon-cut)
				run(restored, horizon-cut)
				if !reflect.DeepEqual(ref.Snapshot(), restored.Snapshot()) {
					t.Fatal("restored fleet's final Result differs from the uninterrupted run")
				}
				a, err := ref.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				b, err := restored.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				if name == restoreName && !bytes.Equal(a, b) {
					t.Fatal("final serialized state differs from the uninterrupted run")
				}
			})
		}
	}
}

func TestStateRejectsCorruption(t *testing.T) {
	const horizon = 48
	set := mkSet(t, horizon)
	f, err := NewShardedFleet(set, clusters(4), FIFO{}, horizon, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(stateJobs()...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *ShardedFleet {
		g, err := NewShardedFleet(set, clusters(4), FIFO{}, horizon, 2)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	if err := fresh().Unmarshal(data); err != nil {
		t.Fatalf("clean image rejected: %v", err)
	}

	// Any flipped byte must be caught by the CRC (or the version check).
	for _, idx := range []int{0, 4, len(data) / 2, len(data) - 5, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[idx] ^= 0xff
		if err := fresh().Unmarshal(mut); err == nil {
			t.Fatalf("corruption at byte %d accepted", idx)
		}
	}
	if err := fresh().Unmarshal(data[:len(data)-1]); err == nil {
		t.Fatal("truncated image accepted")
	}
	if err := fresh().Unmarshal(nil); err == nil {
		t.Fatal("empty image accepted")
	}

	// A snapshot from a different world must be refused.
	other, err := NewShardedFleet(set, clusters(5), FIFO{}, horizon, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Unmarshal(data); err == nil {
		t.Fatal("snapshot restored into a world with different slots")
	}
	gate, err := NewShardedFleet(set, clusters(4), CarbonGate{Percentile: 40, Window: 24}, horizon, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Unmarshal(data); err == nil {
		t.Fatal("snapshot restored under a different policy")
	}
	short, err := NewShardedFleet(set, clusters(4), FIFO{}, horizon-1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := short.Unmarshal(data); err == nil {
		t.Fatal("snapshot restored into a different horizon")
	}
}

func TestEncodeDecodeJobs(t *testing.T) {
	jobs := stateJobs()
	buf := EncodeJobs(nil, jobs)
	got, rest, err := DecodeJobs(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if !reflect.DeepEqual(got, jobs) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, jobs)
	}

	// Tenant-tagged batches round-trip, and a tenant-free batch is
	// byte-identical to the pre-tenancy encoding (same bytes whether
	// the field exists or not — old journals replay unchanged).
	tagged := stateJobsTenants()
	gotTagged, rest, err := DecodeJobs(EncodeJobs(nil, tagged))
	if err != nil || len(rest) != 0 {
		t.Fatalf("tagged round trip: err=%v rest=%d", err, len(rest))
	}
	if !reflect.DeepEqual(gotTagged, tagged) {
		t.Fatalf("tagged round trip:\ngot  %+v\nwant %+v", gotTagged, tagged)
	}
	if !bytes.Equal(EncodeJobs(nil, jobs), buf) {
		t.Fatal("encoding is not deterministic")
	}

	// A suffix passes through untouched.
	withTail := append(EncodeJobs(nil, jobs[:2]), 0xAA, 0xBB)
	_, rest, err = DecodeJobs(withTail)
	if err != nil || len(rest) != 2 || rest[0] != 0xAA {
		t.Fatalf("suffix: rest=%x err=%v", rest, err)
	}

	// Garbage never panics; it errors or decodes fewer jobs.
	for _, junk := range [][]byte{nil, {0xff}, {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, buf[:3], buf[:len(buf)-2]} {
		if _, _, err := DecodeJobs(junk); err == nil && len(junk) > 0 && junk[0] > 0 {
			// count>0 with a short body must error
			t.Fatalf("junk %x decoded cleanly", junk)
		}
	}
}

// TestStateGolden pins the serialized byte layout (magic, version,
// field order, CRC) of the current (version 2) format, over a
// tenant-tagged world with a fair queue installed so the tenancy
// section and has-tenant job flag are exercised. A deliberate format
// change must bump stateVersion and regenerate with:
//
//	go test ./internal/sched -run TestStateGolden -update
func TestStateGolden(t *testing.T) {
	const horizon = 48
	set := mkSet(t, horizon)
	f, err := NewShardedFleet(set, clusters(3), GreenestFirst{}, horizon, 2)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFairQueue(tenant.NewFairQueue(goldenTenantConfig(t)))
	if err := f.Submit(stateJobsTenants()...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	img, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(img) + "\n" + hex.EncodeToString(EncodeJobs(nil, stateJobsTenants())) + "\n"

	golden := filepath.Join("testdata", "fleet_state_v2.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("fleet state encoding drifted from %s:\ngot:\n%swant:\n%s(field order, varint widths, or CRC changed — bump stateVersion and regenerate with -update)",
			golden, got, want)
	}
}

// TestStateDecodeV1Golden proves the pre-tenancy (version 1) format
// still decodes: fleet_state_v1.golden is a frozen fixture from before
// the tenancy sections existed — never regenerated — and must restore
// into a tenant-free fleet whose continued run re-serializes cleanly
// as version 2.
func TestStateDecodeV1Golden(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "fleet_state_v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("fixture has %d lines, want 2", len(lines))
	}
	img, err := hex.DecodeString(lines[0])
	if err != nil {
		t.Fatal(err)
	}
	batch, err := hex.DecodeString(lines[1])
	if err != nil {
		t.Fatal(err)
	}

	// The fixture was taken from this exact world after 6 steps.
	const horizon = 48
	set := mkSet(t, horizon)
	f, err := NewShardedFleet(set, clusters(3), GreenestFirst{}, horizon, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Unmarshal(img); err != nil {
		t.Fatalf("v1 image rejected: %v", err)
	}
	if f.Hour() != 6 {
		t.Fatalf("restored hour %d, want 6", f.Hour())
	}
	for _, j := range stateJobs() {
		info, ok := f.Lookup(j.ID)
		if !ok {
			t.Fatalf("job %d missing after v1 restore", j.ID)
		}
		if info.Tenant != "" {
			t.Fatalf("job %d gained tenant %q from a v1 image", j.ID, info.Tenant)
		}
	}
	// Re-marshal upgrades to version 2 and round-trips.
	up, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if up[len(stateMagic)] != stateVersion {
		t.Fatalf("re-marshal wrote version %d, want %d", up[len(stateMagic)], stateVersion)
	}
	g, err := NewShardedFleet(set, clusters(3), GreenestFirst{}, horizon, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Unmarshal(up); err != nil {
		t.Fatalf("upgraded image rejected: %v", err)
	}

	// A v1 image must be refused by a fleet with a tenant config: its
	// fair queue would reorder placements the snapshot never saw.
	tf, err := NewShardedFleet(set, clusters(3), GreenestFirst{}, horizon, 2)
	if err != nil {
		t.Fatal(err)
	}
	tf.SetFairQueue(tenant.NewFairQueue(goldenTenantConfig(t)))
	if err := tf.Unmarshal(img); err == nil {
		t.Fatal("v1 image restored into a tenant-configured fleet")
	}

	// The v1 job-batch line decodes tenant-free.
	jobs, rest, err := DecodeJobs(batch)
	if err != nil || len(rest) != 0 {
		t.Fatalf("v1 batch: err=%v rest=%d", err, len(rest))
	}
	if !reflect.DeepEqual(jobs, stateJobs()) {
		t.Fatalf("v1 batch decoded to %+v", jobs)
	}
}
