// Package regions holds the catalog of the 123 electric-grid regions
// used throughout the analysis, mirroring the region set of the paper's
// Electricity Maps dataset (2020–2022).
//
// Each entry carries the geographic metadata (coordinates, continent
// grouping), the cloud providers with datacenters in the region, and a
// calibrated annual generation mix from which the grid simulator
// (internal/simgrid) synthesizes hourly carbon-intensity traces. The mix
// is authored so that the population statistics of the synthesized
// traces reproduce the aggregates the paper reports: a global average
// intensity near 368 g·CO₂eq/kWh, Sweden as the global minimum near
// 16 g, roughly 46 % of regions above 400 g, and a large majority of
// regions with low daily variability.
package regions

import (
	"fmt"
	"sort"
)

// Source enumerates generation source categories. The order is
// load-bearing: Mix is indexed by Source.
type Source int

// Generation sources, from most to least carbon intensive (roughly).
const (
	Coal Source = iota
	Gas
	Oil
	Biomass
	Geothermal
	Solar
	Hydro
	Wind
	Nuclear
	numSources
)

// NumSources is the number of generation source categories.
const NumSources = int(numSources)

var sourceNames = [NumSources]string{
	"coal", "gas", "oil", "biomass", "geothermal", "solar", "hydro", "wind", "nuclear",
}

func (s Source) String() string {
	if s < 0 || int(s) >= NumSources {
		return fmt.Sprintf("Source(%d)", int(s))
	}
	return sourceNames[s]
}

// EmissionFactor returns the source's carbon-intensity factor in
// g·CO₂eq/kWh. The values follow lifecycle-style factors adjusted so
// hydro/nuclear-dominated grids land at the paper's observed floor
// (Sweden ≈ 16 g·CO₂eq/kWh).
func (s Source) EmissionFactor() float64 {
	return emissionFactors[s]
}

var emissionFactors = [NumSources]float64{
	Coal:       960,
	Gas:        475,
	Oil:        715,
	Biomass:    230,
	Geothermal: 38,
	Solar:      28,
	Hydro:      11,
	Wind:       8,
	Nuclear:    6,
}

// Fossil reports whether the source burns fossil fuel.
func (s Source) Fossil() bool { return s == Coal || s == Gas || s == Oil }

// Dispatchable reports whether a grid operator can ramp the source to
// follow demand. Solar and wind are weather-driven; nuclear is treated
// as baseload.
func (s Source) Dispatchable() bool {
	switch s {
	case Solar, Wind, Nuclear:
		return false
	}
	return true
}

// Mix is a region's annual generation mix: the fraction of energy from
// each source. Fractions sum to 1.
type Mix [NumSources]float64

// Sum returns the total of all shares (≈1 for a valid mix).
func (m Mix) Sum() float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// NominalCI is the mix-weighted average emission factor, i.e. the
// region's expected annual-average carbon intensity in g·CO₂eq/kWh.
func (m Mix) NominalCI() float64 {
	var ci float64
	for s, share := range m {
		ci += share * emissionFactors[s]
	}
	return ci
}

// RenewableShare returns the solar + wind share (the intermittent,
// variability-driving fraction of the mix).
func (m Mix) RenewableShare() float64 { return m[Solar] + m[Wind] }

// FossilShare returns the coal + gas + oil share.
func (m Mix) FossilShare() float64 { return m[Coal] + m[Gas] + m[Oil] }

// Normalize returns a copy of m scaled so the shares sum to 1. It
// panics if all shares are zero.
func (m Mix) Normalize() Mix {
	total := m.Sum()
	if total == 0 {
		panic("regions: normalizing zero mix")
	}
	var out Mix
	for i, v := range m {
		out[i] = v / total
	}
	return out
}

// Continent is the paper's geographical grouping.
type Continent int

// Continents. "Global" is not a continent; groupings expose it
// separately.
const (
	Africa Continent = iota
	Asia
	Europe
	NorthAmerica
	Oceania
	SouthAmerica
	numContinents
)

// NumContinents is the number of geographic groupings (excluding the
// implicit global group).
const NumContinents = int(numContinents)

var continentNames = [NumContinents]string{
	"Africa", "Asia", "Europe", "North America", "Oceania", "South America",
}

func (c Continent) String() string {
	if c < 0 || int(c) >= NumContinents {
		return fmt.Sprintf("Continent(%d)", int(c))
	}
	return continentNames[c]
}

// Continents lists all groupings in declaration order.
func Continents() []Continent {
	out := make([]Continent, NumContinents)
	for i := range out {
		out[i] = Continent(i)
	}
	return out
}

// Provider is a bit set of cloud providers with a datacenter presence.
type Provider uint8

// Cloud providers tracked by the catalog.
const (
	GCP Provider = 1 << iota
	AWS
	Azure
	IBM
	Alibaba
)

// Has reports whether p includes q.
func (p Provider) Has(q Provider) bool { return p&q != 0 }

func (p Provider) String() string {
	if p == 0 {
		return "none"
	}
	var out string
	add := func(q Provider, name string) {
		if p.Has(q) {
			if out != "" {
				out += "+"
			}
			out += name
		}
	}
	add(GCP, "GCP")
	add(AWS, "AWS")
	add(Azure, "Azure")
	add(IBM, "IBM")
	add(Alibaba, "Alibaba")
	return out
}

// Hyperscale reports whether the region hosts at least one of the three
// hyperscale providers the paper's Figure 4 considers.
func (p Provider) Hyperscale() bool { return p.Has(GCP | AWS | Azure) }

// Region describes one grid region in the catalog.
type Region struct {
	// Code is the Electricity-Maps-style identifier, e.g. "SE",
	// "US-CA", "IN-WE".
	Code string
	// Name is the human-readable region name.
	Name string
	// Continent is the geographic grouping used by the spatial
	// experiments.
	Continent Continent
	// Lat and Lon locate the region's load center, in degrees. They
	// drive the solar-generation model and the latency matrix.
	Lat, Lon float64
	// Providers is the set of cloud providers with datacenters here.
	Providers Provider
	// Mix is the 2021 (mid-study) annual generation mix.
	Mix Mix
	// DeltaRenew is the change in the solar+wind share from 2020 to
	// 2022 (fraction points, may be negative). The simulator shifts
	// this amount between the fossil and intermittent parts of the mix
	// linearly over the study period, producing the long-term trends
	// the paper analyzes in Figure 3(b).
	DeltaRenew float64
	// DemandSwing scales the amplitude of the diurnal demand cycle
	// (1 = typical). Grids with strong electric heating/cooling swings
	// have larger values.
	DemandSwing float64
}

// Validate checks internal consistency of the region entry.
func (r Region) Validate() error {
	if r.Code == "" || r.Name == "" {
		return fmt.Errorf("regions: %q missing code or name", r.Code)
	}
	if r.Lat < -90 || r.Lat > 90 || r.Lon < -180 || r.Lon > 180 {
		return fmt.Errorf("regions: %s has bad coordinates (%v, %v)", r.Code, r.Lat, r.Lon)
	}
	if s := r.Mix.Sum(); s < 0.995 || s > 1.005 {
		return fmt.Errorf("regions: %s mix sums to %v", r.Code, s)
	}
	for src, share := range r.Mix {
		if share < 0 {
			return fmt.Errorf("regions: %s has negative %v share", r.Code, Source(src))
		}
	}
	shift := r.DeltaRenew
	if shift < 0 {
		shift = -shift
	}
	if shift > r.Mix.FossilShare()+r.Mix.RenewableShare() {
		return fmt.Errorf("regions: %s DeltaRenew %v exceeds shiftable share", r.Code, r.DeltaRenew)
	}
	return nil
}

// All returns the full 123-region catalog, sorted by code. The returned
// slice is a fresh copy; callers may reorder it.
func All() []Region {
	out := make([]Region, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// ByCode returns the region with the given code.
func ByCode(code string) (Region, bool) {
	for _, r := range catalog {
		if r.Code == code {
			return r, true
		}
	}
	return Region{}, false
}

// MustByCode returns the region with the given code or panics.
func MustByCode(code string) Region {
	r, ok := ByCode(code)
	if !ok {
		panic("regions: unknown code " + code)
	}
	return r
}

// Codes returns all region codes, sorted.
func Codes() []string {
	out := make([]string, 0, len(catalog))
	for _, r := range catalog {
		out = append(out, r.Code)
	}
	sort.Strings(out)
	return out
}

// ByContinent returns the codes of regions in continent c, sorted.
func ByContinent(c Continent) []string {
	var out []string
	for _, r := range catalog {
		if r.Continent == c {
			out = append(out, r.Code)
		}
	}
	sort.Strings(out)
	return out
}

// WithProviders returns the codes of regions whose provider set
// intersects mask, sorted.
func WithProviders(mask Provider) []string {
	var out []string
	for _, r := range catalog {
		if r.Providers&mask != 0 {
			out = append(out, r.Code)
		}
	}
	sort.Strings(out)
	return out
}

// Hyperscale returns the codes of regions hosting GCP, AWS, or Azure
// datacenters — the population of the paper's Figure 4.
func Hyperscale() []string { return WithProviders(GCP | AWS | Azure) }
