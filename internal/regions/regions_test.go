package regions

import (
	"math"
	"testing"
)

func TestCatalogSize(t *testing.T) {
	if got := len(All()); got != 123 {
		t.Fatalf("catalog has %d regions, want 123 (the paper's dataset size)", got)
	}
}

func TestCatalogEntriesValid(t *testing.T) {
	for _, r := range All() {
		if err := r.Validate(); err != nil {
			t.Errorf("%s: %v", r.Code, err)
		}
	}
}

func TestCatalogCodesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range All() {
		if seen[r.Code] {
			t.Errorf("duplicate code %s", r.Code)
		}
		seen[r.Code] = true
	}
}

func TestAllSortedAndCopied(t *testing.T) {
	a := All()
	for i := 1; i < len(a); i++ {
		if a[i-1].Code >= a[i].Code {
			t.Fatalf("All() not sorted at %d: %s >= %s", i, a[i-1].Code, a[i].Code)
		}
	}
	a[0].Code = "MUTATED"
	if All()[0].Code == "MUTATED" {
		t.Fatal("All() exposes internal slice")
	}
}

func TestByCode(t *testing.T) {
	r, ok := ByCode("SE")
	if !ok || r.Name != "Sweden" {
		t.Fatalf("ByCode(SE) = %+v, %v", r, ok)
	}
	if _, ok := ByCode("NOPE"); ok {
		t.Fatal("ByCode accepted unknown code")
	}
}

func TestMustByCodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByCode did not panic on unknown code")
		}
	}()
	MustByCode("NOPE")
}

// TestGlobalMeanCalibration checks the headline dataset aggregate the
// whole analysis is normalized by: the paper reports a global average
// carbon intensity of 368.39 g·CO₂eq/kWh across the 123 regions.
func TestGlobalMeanCalibration(t *testing.T) {
	var sum float64
	for _, r := range All() {
		sum += r.Mix.NominalCI()
	}
	mean := sum / 123
	if mean < 340 || mean > 400 {
		t.Fatalf("global nominal mean CI = %.1f, want within [340, 400] (paper: 368.39)", mean)
	}
}

// TestSwedenIsMinimum checks that Sweden is the greenest region, as in
// the paper (≈16 g·CO₂eq/kWh annual average), with a usable margin to
// the runner-up so simulator noise cannot flip the ordering.
func TestSwedenIsMinimum(t *testing.T) {
	se := MustByCode("SE").Mix.NominalCI()
	if se < 8 || se > 25 {
		t.Fatalf("Sweden nominal CI = %.1f, want near 16", se)
	}
	for _, r := range All() {
		if r.Code == "SE" {
			continue
		}
		if ci := r.Mix.NominalCI(); ci < se {
			t.Errorf("%s nominal CI %.1f below Sweden's %.1f", r.Code, ci, se)
		}
	}
}

// TestHighCIFraction checks that roughly 46% of regions have
// above-400 g nominal intensity, as in the paper's Figure 3(a).
func TestHighCIFraction(t *testing.T) {
	n := 0
	for _, r := range All() {
		if r.Mix.NominalCI() > 400 {
			n++
		}
	}
	frac := float64(n) / 123
	if frac < 0.38 || frac > 0.54 {
		t.Fatalf("fraction of regions above 400 g = %.2f (%d), want ~0.46", frac, n)
	}
}

// TestSpreadIsLarge checks the max/min ratio of mean intensities is of
// the order the paper reports (≈40x).
func TestSpreadIsLarge(t *testing.T) {
	lo, hi := math.Inf(1), 0.0
	for _, r := range All() {
		ci := r.Mix.NominalCI()
		if ci < lo {
			lo = ci
		}
		if ci > hi {
			hi = ci
		}
	}
	if ratio := hi / lo; ratio < 25 || ratio > 70 {
		t.Fatalf("max/min mean CI ratio = %.1f, want within [25, 70] (paper: ~40x)", ratio)
	}
}

// TestAsiaIsHighestEuropeIsLowest checks the continental ordering the
// paper reports: Asia ≈540 g (highest), Europe ≈280 g (lowest of the
// large groupings).
func TestAsiaIsHighestEuropeIsLowest(t *testing.T) {
	means := make(map[Continent]float64)
	counts := make(map[Continent]int)
	for _, r := range All() {
		means[r.Continent] += r.Mix.NominalCI()
		counts[r.Continent]++
	}
	for c := range means {
		means[c] /= float64(counts[c])
	}
	if means[Asia] < 480 || means[Asia] > 620 {
		t.Errorf("Asia mean = %.0f, want ~540", means[Asia])
	}
	if means[Europe] < 230 || means[Europe] > 330 {
		t.Errorf("Europe mean = %.0f, want ~280", means[Europe])
	}
	if means[Asia] <= means[Europe] {
		t.Error("Asia should have higher mean CI than Europe")
	}
}

func TestHyperscaleCount(t *testing.T) {
	hs := Hyperscale()
	if len(hs) < 40 {
		t.Fatalf("only %d hyperscale regions, need >= 40 for Figure 4", len(hs))
	}
}

func TestProviderCounts(t *testing.T) {
	check := func(p Provider, name string, lo, hi int) {
		n := len(WithProviders(p))
		if n < lo || n > hi {
			t.Errorf("%s present in %d regions, want [%d, %d]", name, n, lo, hi)
		}
	}
	check(GCP, "GCP", 30, 42)
	check(AWS, "AWS", 20, 32)
	check(Azure, "Azure", 20, 34)
	check(IBM, "IBM", 5, 10)
	check(Alibaba, "Alibaba", 8, 14)
}

func TestProviderString(t *testing.T) {
	if got := (GCP | AWS).String(); got != "GCP+AWS" {
		t.Errorf("String = %q", got)
	}
	if got := Provider(0).String(); got != "none" {
		t.Errorf("zero provider String = %q", got)
	}
}

func TestByContinentPartition(t *testing.T) {
	total := 0
	for _, c := range Continents() {
		total += len(ByContinent(c))
	}
	if total != 123 {
		t.Fatalf("continents partition %d regions, want 123", total)
	}
}

func TestSourceProperties(t *testing.T) {
	if !Coal.Fossil() || !Gas.Fossil() || !Oil.Fossil() {
		t.Error("fossil flags wrong")
	}
	if Hydro.Fossil() || Nuclear.Fossil() {
		t.Error("non-fossil flagged fossil")
	}
	if Solar.Dispatchable() || Wind.Dispatchable() || Nuclear.Dispatchable() {
		t.Error("intermittent/baseload flagged dispatchable")
	}
	if !Gas.Dispatchable() || !Hydro.Dispatchable() {
		t.Error("dispatchable flags wrong")
	}
	for s := Source(0); int(s) < NumSources; s++ {
		if s.String() == "" || s.EmissionFactor() <= 0 {
			t.Errorf("source %d has bad metadata", s)
		}
	}
	if Coal.EmissionFactor() <= Gas.EmissionFactor() {
		t.Error("coal should be dirtier than gas")
	}
	if Nuclear.EmissionFactor() >= Gas.EmissionFactor() {
		t.Error("nuclear should be cleaner than gas")
	}
}

func TestMixHelpers(t *testing.T) {
	mix := m(.5, .3, 0, 0, 0, .1, 0, .1, 0)
	if got := mix.Sum(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Sum = %v", got)
	}
	if got := mix.FossilShare(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("FossilShare = %v", got)
	}
	if got := mix.RenewableShare(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RenewableShare = %v", got)
	}
	n := Mix{Coal: 2, Gas: 2}.Normalize()
	if math.Abs(n.Sum()-1) > 1e-12 || math.Abs(n[Coal]-0.5) > 1e-12 {
		t.Errorf("Normalize = %+v", n)
	}
}

func TestNormalizePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normalize of zero mix did not panic")
		}
	}()
	Mix{}.Normalize()
}

// TestRenewableTrendPopulation checks the Figure 3(b) calibration: in
// the paper ~23% of regions became meaningfully greener and ~20%
// meaningfully browner between 2020 and 2022, with the rest unchanged
// (within ±25 g). A DeltaRenew of magnitude >= 0.03 moves nominal CI by
// more than ~25 g for typical fossil blends.
func TestRenewableTrendPopulation(t *testing.T) {
	greener, browner := 0, 0
	for _, r := range All() {
		switch {
		case r.DeltaRenew >= 0.05:
			greener++
		case r.DeltaRenew <= -0.04:
			browner++
		}
	}
	if frac := float64(greener) / 123; frac < 0.15 || frac > 0.35 {
		t.Errorf("greener fraction = %.2f (%d), want ~0.23", frac, greener)
	}
	if frac := float64(browner) / 123; frac < 0.12 || frac > 0.30 {
		t.Errorf("browner fraction = %.2f (%d), want ~0.20", frac, browner)
	}
}

// TestLowVariabilityMajority checks that most regions have a small
// intermittent share, the precondition for the paper's ">70% of regions
// have low daily carbon-intensity variation" finding.
func TestLowVariabilityMajority(t *testing.T) {
	low := 0
	for _, r := range All() {
		if r.Mix.RenewableShare() < 0.15 {
			low++
		}
	}
	if frac := float64(low) / 123; frac < 0.60 {
		t.Fatalf("only %.2f of regions have small intermittent share, want > 0.60", frac)
	}
}
