package regions

// catalog is the full 123-region dataset. Mix columns are, in order:
// coal, gas, oil, biomass, geothermal, solar, hydro, wind, nuclear.
// Each entry's comment notes the nominal (mix-weighted) carbon
// intensity in g·CO₂eq/kWh implied by the emission factors.
//
// Shares are calibrated so the population statistics match the paper's
// dataset-level aggregates; see the package comment.

func m(coal, gas, oil, bio, geo, sol, hyd, wnd, nuc float64) Mix {
	return Mix{Coal: coal, Gas: gas, Oil: oil, Biomass: bio, Geothermal: geo,
		Solar: sol, Hydro: hyd, Wind: wnd, Nuclear: nuc}
}

var catalog = []Region{
	// ---------------------------------------------------------------- Europe
	{Code: "SE", Name: "Sweden", Continent: Europe, Lat: 59.33, Lon: 18.07,
		Providers: AWS | Azure, Mix: m(0, .004, 0, .008, 0, .01, .40, .178, .40),
		DeltaRenew: .02, DemandSwing: 1.0}, // ~15 (global minimum)
	{Code: "NO", Name: "Norway", Continent: Europe, Lat: 59.91, Lon: 10.75,
		Providers: Azure, Mix: m(0, .02, 0, 0, 0, 0, .88, .10, 0),
		DeltaRenew: .01, DemandSwing: 1.1}, // ~20
	{Code: "FI", Name: "Finland", Continent: Europe, Lat: 60.17, Lon: 24.94,
		Providers: GCP, Mix: m(.01, .05, 0, .12, 0, .01, .17, .12, .52),
		DeltaRenew: .05, DemandSwing: 1.1}, // ~67
	{Code: "DK", Name: "Denmark", Continent: Europe, Lat: 55.68, Lon: 12.57,
		Mix:        m(.11, .07, .01, .17, 0, .04, 0, .60, 0),
		DeltaRenew: .10, DemandSwing: 1.0}, // ~191
	{Code: "IS", Name: "Iceland", Continent: Europe, Lat: 64.15, Lon: -21.94,
		Mix:        m(0, 0, 0, 0, .30, 0, .70, 0, 0),
		DeltaRenew: 0, DemandSwing: .5}, // ~19
	{Code: "IE", Name: "Ireland", Continent: Europe, Lat: 53.35, Lon: -6.26,
		Providers: AWS | Azure, Mix: m(.02, .47, .01, .02, 0, .01, .02, .45, 0),
		DeltaRenew: .07, DemandSwing: 1.0}, // ~258
	{Code: "GB", Name: "Great Britain", Continent: Europe, Lat: 51.51, Lon: -0.13,
		Providers: GCP | AWS | Azure | IBM, Mix: m(.03, .40, 0, .06, 0, .04, .02, .25, .20),
		DeltaRenew: .06, DemandSwing: 1.0}, // ~237
	{Code: "FR", Name: "France", Continent: Europe, Lat: 48.86, Lon: 2.35,
		Providers: GCP | AWS | Azure, Mix: m(.01, .06, .01, .02, 0, .03, .11, .07, .69),
		DeltaRenew: .02, DemandSwing: 1.2}, // ~57
	{Code: "BE", Name: "Belgium", Continent: Europe, Lat: 50.85, Lon: 4.35,
		Providers: GCP, Mix: m(.02, .25, 0, .03, 0, .06, .01, .12, .51),
		DeltaRenew: .03, DemandSwing: 1.0}, // ~151
	{Code: "NL", Name: "Netherlands", Continent: Europe, Lat: 52.37, Lon: 4.90,
		Providers: GCP | Azure, Mix: m(.12, .58, .01, .05, 0, .09, 0, .12, .03),
		DeltaRenew: .10, DemandSwing: 1.0}, // ~413
	{Code: "DE", Name: "Germany", Continent: Europe, Lat: 50.11, Lon: 8.68,
		Providers: GCP | AWS | Azure | IBM | Alibaba, Mix: m(.28, .15, .01, .08, 0, .10, .03, .23, .12),
		DeltaRenew: .08, DemandSwing: 1.0}, // ~371
	{Code: "PL", Name: "Poland", Continent: Europe, Lat: 52.23, Lon: 21.01,
		Providers: GCP | Azure, Mix: m(.70, .10, .01, .06, 0, .02, .02, .09, 0),
		DeltaRenew: -.04, DemandSwing: .9}, // ~742
	{Code: "CZ", Name: "Czechia", Continent: Europe, Lat: 50.08, Lon: 14.44,
		Mix:        m(.40, .10, 0, .06, 0, .03, .03, .01, .37),
		DeltaRenew: .01, DemandSwing: .9}, // ~449
	{Code: "AT", Name: "Austria", Continent: Europe, Lat: 48.21, Lon: 16.37,
		Mix:        m(.02, .12, 0, .06, 0, .02, .68, .10, 0),
		DeltaRenew: .02, DemandSwing: 1.1}, // ~98
	{Code: "CH", Name: "Switzerland", Continent: Europe, Lat: 47.37, Lon: 8.54,
		Providers: GCP | Azure, Mix: m(0, .01, 0, .02, 0, .04, .57, .01, .35),
		DeltaRenew: .01, DemandSwing: 1.0}, // ~19
	{Code: "IT", Name: "Italy", Continent: Europe, Lat: 45.46, Lon: 9.19,
		Providers: GCP | AWS | Azure, Mix: m(.06, .48, .03, .06, .02, .09, .19, .07, 0),
		DeltaRenew: .04, DemandSwing: 1.1}, // ~326
	{Code: "ES", Name: "Spain", Continent: Europe, Lat: 40.42, Lon: -3.70,
		Providers: GCP | AWS, Mix: m(.03, .25, .02, .03, 0, .12, .11, .23, .21),
		DeltaRenew: .09, DemandSwing: 1.1}, // ~176
	{Code: "PT", Name: "Portugal", Continent: Europe, Lat: 38.72, Lon: -9.14,
		Mix:        m(.02, .30, .01, .06, 0, .06, .25, .30, 0),
		DeltaRenew: .08, DemandSwing: 1.0}, // ~190
	{Code: "GR", Name: "Greece", Continent: Europe, Lat: 37.98, Lon: 23.73,
		Mix:        m(.10, .40, .08, .01, 0, .14, .08, .19, 0),
		DeltaRenew: .09, DemandSwing: 1.1}, // ~352
	{Code: "RO", Name: "Romania", Continent: Europe, Lat: 44.43, Lon: 26.10,
		Mix:        m(.17, .17, .01, .01, 0, .04, .28, .12, .20),
		DeltaRenew: .02, DemandSwing: 1.0}, // ~260
	{Code: "BG", Name: "Bulgaria", Continent: Europe, Lat: 42.70, Lon: 23.32,
		Mix:        m(.38, .05, 0, .02, 0, .05, .09, .04, .37),
		DeltaRenew: .01, DemandSwing: .9}, // ~398
	{Code: "HU", Name: "Hungary", Continent: Europe, Lat: 47.50, Lon: 19.04,
		Mix:        m(.09, .26, 0, .06, 0, .07, .01, .02, .49),
		DeltaRenew: .03, DemandSwing: 1.0}, // ~229
	{Code: "SK", Name: "Slovakia", Continent: Europe, Lat: 48.15, Lon: 17.11,
		Mix:        m(.06, .12, .01, .04, 0, .02, .15, 0, .60),
		DeltaRenew: .01, DemandSwing: .9}, // ~137
	{Code: "SI", Name: "Slovenia", Continent: Europe, Lat: 46.06, Lon: 14.51,
		Mix:        m(.24, .03, 0, .02, 0, .03, .30, 0, .38),
		DeltaRenew: .01, DemandSwing: .9}, // ~256
	{Code: "HR", Name: "Croatia", Continent: Europe, Lat: 45.81, Lon: 15.98,
		Mix:        m(.08, .20, .01, .05, .01, .01, .45, .19, 0),
		DeltaRenew: .02, DemandSwing: 1.0}, // ~198
	{Code: "RS", Name: "Serbia", Continent: Europe, Lat: 44.79, Lon: 20.45,
		Mix:        m(.65, .05, .01, .01, 0, 0, .25, .03, 0),
		DeltaRenew: -.05, DemandSwing: .9}, // ~660
	{Code: "UA", Name: "Ukraine", Continent: Europe, Lat: 50.45, Lon: 30.52,
		Mix:        m(.25, .08, .01, .02, 0, .04, .05, .02, .53),
		DeltaRenew: -.05, DemandSwing: .9}, // ~295
	{Code: "EE", Name: "Estonia", Continent: Europe, Lat: 59.44, Lon: 24.75,
		Mix:        m(.05, .05, .55, .15, 0, .05, .02, .13, 0),
		DeltaRenew: .04, DemandSwing: .9}, // ~502 (oil shale)
	{Code: "LV", Name: "Latvia", Continent: Europe, Lat: 56.95, Lon: 24.11,
		Mix:        m(0, .35, 0, .15, 0, .01, .40, .09, 0),
		DeltaRenew: .02, DemandSwing: 1.0}, // ~206
	{Code: "LT", Name: "Lithuania", Continent: Europe, Lat: 54.69, Lon: 25.28,
		Mix:        m(0, .25, .02, .15, 0, .05, .10, .43, 0),
		DeltaRenew: .08, DemandSwing: 1.0}, // ~174
	{Code: "LU", Name: "Luxembourg", Continent: Europe, Lat: 49.61, Lon: 6.13,
		Mix:        m(0, .25, 0, .15, 0, .08, .25, .27, 0),
		DeltaRenew: .06, DemandSwing: 1.0}, // ~160
	{Code: "MT", Name: "Malta", Continent: Europe, Lat: 35.90, Lon: 14.51,
		Mix:        m(0, .92, .05, .01, 0, .02, 0, 0, 0),
		DeltaRenew: .01, DemandSwing: .6}, // ~476
	{Code: "CY", Name: "Cyprus", Continent: Europe, Lat: 35.19, Lon: 33.38,
		Mix:        m(0, .05, .80, .02, 0, .10, 0, .03, 0),
		DeltaRenew: .03, DemandSwing: .7}, // ~603
	{Code: "MD", Name: "Moldova", Continent: Europe, Lat: 47.01, Lon: 28.86,
		Mix:        m(0, .80, .01, .04, 0, .02, .05, .08, 0),
		DeltaRenew: .01, DemandSwing: .8}, // ~398
	{Code: "BA", Name: "Bosnia and Herzegovina", Continent: Europe, Lat: 43.86, Lon: 18.41,
		Mix:        m(.60, .01, 0, .01, 0, .01, .34, .03, 0),
		DeltaRenew: -.04, DemandSwing: .9}, // ~587
	{Code: "MK", Name: "North Macedonia", Continent: Europe, Lat: 41.99, Lon: 21.43,
		Mix:        m(.45, .15, .02, .02, 0, .03, .28, .05, 0),
		DeltaRenew: -.04, DemandSwing: .9}, // ~526
	{Code: "ME", Name: "Montenegro", Continent: Europe, Lat: 42.43, Lon: 19.26,
		Mix:        m(.40, 0, 0, .01, 0, .01, .50, .08, 0),
		DeltaRenew: .01, DemandSwing: .9}, // ~393
	{Code: "AL", Name: "Albania", Continent: Europe, Lat: 41.33, Lon: 19.82,
		Mix:        m(0, .01, .02, 0, 0, .02, .95, 0, 0),
		DeltaRenew: .01, DemandSwing: .8}, // ~30

	// --------------------------------------------------------- North America
	{Code: "CA-ON", Name: "Ontario", Continent: NorthAmerica, Lat: 43.65, Lon: -79.38,
		Providers: GCP | Azure, Mix: m(0, .07, 0, .01, 0, .02, .24, .08, .58),
		DeltaRenew: .01, DemandSwing: 1.2}, // ~43
	{Code: "CA-QC", Name: "Quebec", Continent: NorthAmerica, Lat: 45.50, Lon: -73.57,
		Providers: GCP | AWS | Azure, Mix: m(0, .01, 0, .01, 0, 0, .93, .05, 0),
		DeltaRenew: .01, DemandSwing: 1.3}, // ~18
	{Code: "CA-BC", Name: "British Columbia", Continent: NorthAmerica, Lat: 49.28, Lon: -123.12,
		Mix:        m(0, .03, 0, .02, 0, 0, .90, .05, 0),
		DeltaRenew: 0, DemandSwing: 1.1}, // ~29
	{Code: "CA-AB", Name: "Alberta", Continent: NorthAmerica, Lat: 51.05, Lon: -114.07,
		Mix:        m(.08, .74, .01, .02, 0, .02, .03, .10, 0),
		DeltaRenew: -.07, DemandSwing: 1.0}, // ~442
	{Code: "CA-MB", Name: "Manitoba", Continent: NorthAmerica, Lat: 49.90, Lon: -97.14,
		Mix:        m(0, .01, 0, 0, 0, 0, .96, .03, 0),
		DeltaRenew: 0, DemandSwing: 1.2}, // ~16
	{Code: "CA-SK", Name: "Saskatchewan", Continent: NorthAmerica, Lat: 50.45, Lon: -104.62,
		Mix:        m(.40, .40, .01, .01, 0, .01, .13, .04, 0),
		DeltaRenew: -.05, DemandSwing: 1.0}, // ~586
	{Code: "CA-NS", Name: "Nova Scotia", Continent: NorthAmerica, Lat: 44.65, Lon: -63.58,
		Mix:        m(.50, .20, .03, .03, 0, 0, .10, .14, 0),
		DeltaRenew: .02, DemandSwing: 1.1}, // ~606
	{Code: "CA-NB", Name: "New Brunswick", Continent: NorthAmerica, Lat: 45.96, Lon: -66.64,
		Mix:        m(.15, .10, .02, .04, 0, 0, .25, .08, .36),
		DeltaRenew: .01, DemandSwing: 1.1}, // ~221
	{Code: "US-CA", Name: "California", Continent: NorthAmerica, Lat: 37.77, Lon: -122.42,
		Providers: GCP | AWS | Azure | Alibaba, Mix: m(0, .42, 0, .03, .05, .17, .12, .09, .12),
		DeltaRenew: .08, DemandSwing: 1.3}, // ~216
	{Code: "US-WA", Name: "Washington", Continent: NorthAmerica, Lat: 47.61, Lon: -122.33,
		Providers: Azure, Mix: m(.03, .12, 0, .01, 0, 0, .68, .08, .08),
		DeltaRenew: .01, DemandSwing: 1.6}, // ~97
	{Code: "US-OR", Name: "Oregon", Continent: NorthAmerica, Lat: 45.52, Lon: -122.68,
		Providers: GCP | AWS, Mix: m(.02, .22, 0, .01, 0, .01, .58, .13, .03),
		DeltaRenew: .02, DemandSwing: 1.4}, // ~134
	{Code: "US-NV", Name: "Nevada", Continent: NorthAmerica, Lat: 36.17, Lon: -115.14,
		Providers: GCP, Mix: m(.04, .62, 0, 0, .05, .21, .05, .03, 0),
		DeltaRenew: .04, DemandSwing: 1.2}, // ~342
	{Code: "US-AZ", Name: "Arizona", Continent: NorthAmerica, Lat: 33.45, Lon: -112.07,
		Providers: Azure, Mix: m(.12, .43, 0, 0, 0, .10, .06, .01, .28),
		DeltaRenew: .04, DemandSwing: 1.3}, // ~325
	{Code: "US-UT", Name: "Utah", Continent: NorthAmerica, Lat: 40.76, Lon: -111.89,
		Providers: GCP, Mix: m(.58, .28, .01, 0, .01, .08, .02, .02, 0),
		DeltaRenew: .02, DemandSwing: 1.1}, // ~700
	{Code: "US-CO", Name: "Colorado", Continent: NorthAmerica, Lat: 39.74, Lon: -104.99,
		Mix:        m(.38, .26, 0, 0, 0, .05, .03, .28, 0),
		DeltaRenew: .06, DemandSwing: 1.1}, // ~492
	{Code: "US-TX", Name: "Texas", Continent: NorthAmerica, Lat: 32.78, Lon: -96.80,
		Providers: GCP | Azure | IBM, Mix: m(.17, .45, 0, 0, 0, .06, .01, .23, .08),
		DeltaRenew: .09, DemandSwing: 1.3}, // ~381
	{Code: "US-OK", Name: "Oklahoma", Continent: NorthAmerica, Lat: 35.47, Lon: -97.52,
		Mix:        m(.06, .42, 0, 0, 0, .01, .04, .47, 0),
		DeltaRenew: .07, DemandSwing: 1.1}, // ~262
	{Code: "US-KS", Name: "Kansas", Continent: NorthAmerica, Lat: 39.05, Lon: -95.68,
		Mix:        m(.30, .20, 0, 0, 0, .01, 0, .47, .02),
		DeltaRenew: .07, DemandSwing: 1.1}, // ~387
	{Code: "US-MO", Name: "Missouri", Continent: NorthAmerica, Lat: 38.63, Lon: -90.20,
		Mix:        m(.62, .18, 0, 0, 0, .01, .03, .08, .08),
		DeltaRenew: -.05, DemandSwing: 1.1}, // ~682
	{Code: "US-IL", Name: "Illinois", Continent: NorthAmerica, Lat: 41.88, Lon: -87.63,
		Providers: Azure, Mix: m(.25, .15, 0, 0, 0, .02, 0, .12, .46),
		DeltaRenew: .03, DemandSwing: 1.1}, // ~316
	{Code: "US-OH", Name: "Ohio", Continent: NorthAmerica, Lat: 39.96, Lon: -82.99,
		Providers: GCP | AWS, Mix: m(.40, .42, .01, .01, 0, .01, 0, .02, .13),
		DeltaRenew: .01, DemandSwing: 1.1}, // ~594
	{Code: "US-PA", Name: "Pennsylvania", Continent: NorthAmerica, Lat: 40.44, Lon: -79.99,
		Mix:        m(.15, .50, 0, .01, 0, 0, .02, .02, .30),
		DeltaRenew: .01, DemandSwing: 1.1}, // ~386
	{Code: "US-VA", Name: "Virginia", Continent: NorthAmerica, Lat: 38.95, Lon: -77.45,
		Providers: GCP | AWS | Azure | IBM, Mix: m(.04, .58, .01, .04, 0, .05, .01, 0, .27),
		DeltaRenew: .03, DemandSwing: 1.2}, // ~333
	{Code: "US-NC", Name: "North Carolina", Continent: NorthAmerica, Lat: 35.23, Lon: -80.84,
		Mix:        m(.15, .35, 0, .02, 0, .08, .05, 0, .35),
		DeltaRenew: .03, DemandSwing: 1.2}, // ~320
	{Code: "US-GA", Name: "Georgia", Continent: NorthAmerica, Lat: 33.75, Lon: -84.39,
		Mix:        m(.18, .45, 0, .03, 0, .05, .03, 0, .26),
		DeltaRenew: .03, DemandSwing: 1.2}, // ~397
	{Code: "US-FL", Name: "Florida", Continent: NorthAmerica, Lat: 25.76, Lon: -80.19,
		Mix:        m(.07, .73, .01, .02, 0, .05, 0, 0, .12),
		DeltaRenew: .03, DemandSwing: 1.2}, // ~428
	{Code: "US-TN", Name: "Tennessee", Continent: NorthAmerica, Lat: 36.16, Lon: -86.78,
		Mix:        m(.20, .20, 0, .01, 0, .01, .12, 0, .46),
		DeltaRenew: .01, DemandSwing: 1.1}, // ~294
	{Code: "US-IA", Name: "Iowa", Continent: NorthAmerica, Lat: 41.59, Lon: -93.62,
		Providers: GCP | Azure, Mix: m(.22, .10, 0, 0, 0, .01, .02, .60, .05),
		DeltaRenew: .08, DemandSwing: 1.0}, // ~264
	{Code: "US-MN", Name: "Minnesota", Continent: NorthAmerica, Lat: 44.98, Lon: -93.27,
		Mix:        m(.25, .20, 0, .02, 0, .03, .02, .24, .24),
		DeltaRenew: .04, DemandSwing: 1.1}, // ~344
	{Code: "US-WI", Name: "Wisconsin", Continent: NorthAmerica, Lat: 43.04, Lon: -87.91,
		Mix:        m(.35, .35, 0, .02, 0, .02, .03, .03, .20),
		DeltaRenew: -.05, DemandSwing: 1.1}, // ~509
	{Code: "US-NY", Name: "New York", Continent: NorthAmerica, Lat: 40.71, Lon: -74.01,
		Mix:        m(0, .46, .01, .01, 0, .02, .22, .04, .24),
		DeltaRenew: .02, DemandSwing: 1.2}, // ~233
	{Code: "US-MA", Name: "Massachusetts", Continent: NorthAmerica, Lat: 42.36, Lon: -71.06,
		Mix:        m(0, .72, .02, .04, 0, .15, .02, .03, .02),
		DeltaRenew: .04, DemandSwing: 1.2}, // ~370
	{Code: "US-NE", Name: "Nebraska", Continent: NorthAmerica, Lat: 41.26, Lon: -95.93,
		Mix:        m(.50, .05, 0, 0, 0, .01, .03, .27, .14),
		DeltaRenew: .05, DemandSwing: 1.0}, // ~507
	{Code: "US-NM", Name: "New Mexico", Continent: NorthAmerica, Lat: 35.08, Lon: -106.65,
		Mix:        m(.30, .30, 0, 0, 0, .08, .01, .31, 0),
		DeltaRenew: .08, DemandSwing: 1.1}, // ~435
	{Code: "US-ID", Name: "Idaho", Continent: NorthAmerica, Lat: 43.62, Lon: -116.21,
		Mix:        m(.01, .20, 0, .02, .02, .04, .55, .16, 0),
		DeltaRenew: .02, DemandSwing: 1.2}, // ~118
	{Code: "US-MT", Name: "Montana", Continent: NorthAmerica, Lat: 46.59, Lon: -112.04,
		Mix:        m(.45, .05, .01, 0, 0, .01, .38, .10, 0),
		DeltaRenew: -.04, DemandSwing: 1.0}, // ~468
	{Code: "US-WY", Name: "Wyoming", Continent: NorthAmerica, Lat: 41.14, Lon: -104.82,
		Mix:        m(.70, .08, .01, 0, 0, 0, .04, .17, 0),
		DeltaRenew: -.03, DemandSwing: 1.0}, // ~719
	{Code: "MX", Name: "Mexico", Continent: NorthAmerica, Lat: 19.43, Lon: -99.13,
		Mix:        m(.10, .58, .10, .01, .01, .05, .09, .06, 0),
		DeltaRenew: -.06, DemandSwing: .9}, // ~449

	// ------------------------------------------------------------------ Asia
	{Code: "IN-WE", Name: "India West (Mumbai)", Continent: Asia, Lat: 19.08, Lon: 72.88,
		Providers: GCP | AWS | Azure | Alibaba, Mix: m(.74, .05, .01, .02, 0, .04, .02, .10, .02),
		DeltaRenew: -.04, DemandSwing: .6}, // ~748 (highest)
	{Code: "IN-SO", Name: "India South (Chennai)", Continent: Asia, Lat: 13.08, Lon: 80.27,
		Providers: Azure, Mix: m(.60, .05, .01, .02, 0, .08, .06, .15, .03),
		DeltaRenew: .06, DemandSwing: .7}, // ~616
	{Code: "IN-NO", Name: "India North (Delhi)", Continent: Asia, Lat: 28.61, Lon: 77.21,
		Providers: GCP, Mix: m(.70, .04, .01, .02, 0, .06, .08, .06, .03),
		DeltaRenew: -.04, DemandSwing: .7}, // ~706
	{Code: "IN-EA", Name: "India East (Kolkata)", Continent: Asia, Lat: 22.57, Lon: 88.36,
		Mix:        m(.72, .08, .01, .02, 0, .02, .12, .02, .01),
		DeltaRenew: -.02, DemandSwing: .6}, // ~743
	{Code: "JP-TK", Name: "Japan Tokyo", Continent: Asia, Lat: 35.68, Lon: 139.69,
		Providers: GCP | AWS | Azure | IBM | Alibaba, Mix: m(.30, .40, .04, .03, 0, .10, .05, .01, .07),
		DeltaRenew: .03, DemandSwing: 1.0}, // ~517
	{Code: "JP-KN", Name: "Japan Kansai (Osaka)", Continent: Asia, Lat: 34.69, Lon: 135.50,
		Providers: GCP | AWS | Azure, Mix: m(.25, .35, .03, .03, 0, .08, .08, .01, .17),
		DeltaRenew: .02, DemandSwing: 1.0}, // ~439
	{Code: "KR", Name: "South Korea", Continent: Asia, Lat: 37.57, Lon: 126.98,
		Providers: GCP | AWS | Azure, Mix: m(.35, .28, .02, .02, 0, .04, .01, .01, .27),
		DeltaRenew: -.05, DemandSwing: 1.0}, // ~491
	{Code: "CN-NO", Name: "China North (Beijing)", Continent: Asia, Lat: 39.90, Lon: 116.41,
		Providers: AWS | Alibaba, Mix: m(.64, .08, 0, .01, 0, .05, .12, .07, .03),
		DeltaRenew: .05, DemandSwing: .9}, // ~658
	{Code: "CN-EA", Name: "China East (Shanghai)", Continent: Asia, Lat: 31.23, Lon: 121.47,
		Providers: Alibaba, Mix: m(.58, .10, 0, .01, 0, .06, .15, .05, .05),
		DeltaRenew: .03, DemandSwing: .9}, // ~611
	{Code: "CN-SO", Name: "China South (Shenzhen)", Continent: Asia, Lat: 22.54, Lon: 114.06,
		Providers: Alibaba, Mix: m(.50, .12, 0, .01, 0, .04, .25, .03, .05),
		DeltaRenew: .02, DemandSwing: .9}, // ~544
	{Code: "HK", Name: "Hong Kong", Continent: Asia, Lat: 22.32, Lon: 114.17,
		Providers: GCP | AWS | Azure | Alibaba, Mix: m(.50, .45, .01, .01, 0, .01, 0, 0, .02),
		DeltaRenew: -.005, DemandSwing: .15}, // ~704 (aperiodic)
	{Code: "TW", Name: "Taiwan", Continent: Asia, Lat: 25.03, Lon: 121.57,
		Providers: GCP, Mix: m(.45, .38, .02, .01, 0, .04, .03, .02, .05),
		DeltaRenew: -.05, DemandSwing: .9}, // ~631
	{Code: "SG", Name: "Singapore", Continent: Asia, Lat: 1.35, Lon: 103.82,
		Providers: GCP | AWS | Azure | Alibaba, Mix: m(0, .96, .01, .01, 0, .02, 0, 0, 0),
		DeltaRenew: -.01, DemandSwing: .3}, // ~466
	{Code: "ID", Name: "Indonesia", Continent: Asia, Lat: -6.21, Lon: 106.85,
		Providers: GCP | AWS | Alibaba, Mix: m(.62, .17, .03, .05, .05, 0, .08, 0, 0),
		DeltaRenew: -.02, DemandSwing: .1}, // ~712 (aperiodic)
	{Code: "MY", Name: "Malaysia", Continent: Asia, Lat: 3.14, Lon: 101.69,
		Providers: AWS | Alibaba, Mix: m(.44, .38, .01, .01, 0, .01, .15, 0, 0),
		DeltaRenew: -.04, DemandSwing: .4}, // ~614
	{Code: "TH", Name: "Thailand", Continent: Asia, Lat: 13.76, Lon: 100.50,
		Mix:        m(.20, .60, 0, .06, 0, .04, .08, .02, 0),
		DeltaRenew: .01, DemandSwing: .6}, // ~493
	{Code: "VN", Name: "Vietnam", Continent: Asia, Lat: 21.03, Lon: 105.85,
		Mix:        m(.50, .10, 0, .01, 0, .11, .27, .01, 0),
		DeltaRenew: .09, DemandSwing: .7}, // ~536
	{Code: "PH", Name: "Philippines", Continent: Asia, Lat: 14.60, Lon: 120.98,
		Mix:        m(.58, .20, .02, .01, .08, .02, .08, .01, 0),
		DeltaRenew: -.04, DemandSwing: .6}, // ~673
	{Code: "BD", Name: "Bangladesh", Continent: Asia, Lat: 23.81, Lon: 90.41,
		Mix:        m(.08, .80, .07, 0, 0, .01, .04, 0, 0),
		DeltaRenew: -.05, DemandSwing: .5}, // ~508
	{Code: "PK", Name: "Pakistan", Continent: Asia, Lat: 24.86, Lon: 67.00,
		Mix:        m(.20, .30, .05, .01, 0, .02, .28, .02, .12),
		DeltaRenew: -.04, DemandSwing: .7}, // ~377
	{Code: "AE", Name: "United Arab Emirates", Continent: Asia, Lat: 25.20, Lon: 55.27,
		Providers: GCP | AWS | Azure | Alibaba, Mix: m(0, .88, .01, 0, 0, .05, 0, 0, .06),
		DeltaRenew: .02, DemandSwing: .5}, // ~427
	{Code: "SA", Name: "Saudi Arabia", Continent: Asia, Lat: 24.71, Lon: 46.68,
		Providers: GCP, Mix: m(0, .62, .37, 0, 0, .01, 0, 0, 0),
		DeltaRenew: -.04, DemandSwing: .6}, // ~559
	{Code: "QA", Name: "Qatar", Continent: Asia, Lat: 25.29, Lon: 51.53,
		Providers: GCP | Azure, Mix: m(0, .995, 0, 0, 0, .005, 0, 0, 0),
		DeltaRenew: -.003, DemandSwing: .4}, // ~473
	{Code: "BH", Name: "Bahrain", Continent: Asia, Lat: 26.23, Lon: 50.59,
		Providers: AWS, Mix: m(0, .99, .005, 0, 0, .005, 0, 0, 0),
		DeltaRenew: -.003, DemandSwing: .4}, // ~474
	{Code: "IL", Name: "Israel", Continent: Asia, Lat: 32.09, Lon: 34.78,
		Providers: GCP | AWS, Mix: m(.22, .68, .01, 0, 0, .09, 0, 0, 0),
		DeltaRenew: .03, DemandSwing: .8}, // ~544
	{Code: "KZ", Name: "Kazakhstan", Continent: Asia, Lat: 51.17, Lon: 71.45,
		Mix:        m(.68, .18, .01, 0, 0, .01, .10, .02, 0),
		DeltaRenew: -.05, DemandSwing: .8}, // ~747
	{Code: "TR", Name: "Turkey", Continent: Asia, Lat: 41.01, Lon: 28.98,
		Mix:        m(.32, .25, .01, .02, .02, .05, .26, .07, 0),
		DeltaRenew: .05, DemandSwing: .9}, // ~443

	// --------------------------------------------------------------- Oceania
	{Code: "AU-NSW", Name: "New South Wales", Continent: Oceania, Lat: -33.87, Lon: 151.21,
		Providers: GCP | AWS | Azure | IBM, Mix: m(.62, .05, .01, .01, 0, .13, .04, .14, 0),
		DeltaRenew: .07, DemandSwing: 1.0}, // ~634
	{Code: "AU-VIC", Name: "Victoria", Continent: Oceania, Lat: -37.81, Lon: 144.96,
		Providers: GCP | AWS | Azure, Mix: m(.68, .04, .01, 0, 0, .08, .06, .13, 0),
		DeltaRenew: .06, DemandSwing: 1.0}, // ~683
	{Code: "AU-QLD", Name: "Queensland", Continent: Oceania, Lat: -27.47, Lon: 153.03,
		Mix:        m(.65, .09, .01, 0, 0, .15, .05, .05, 0),
		DeltaRenew: .08, DemandSwing: 1.0}, // ~679
	{Code: "AU-SA", Name: "South Australia", Continent: Oceania, Lat: -34.93, Lon: 138.60,
		Mix:        m(.02, .32, .01, 0, 0, .20, 0, .45, 0),
		DeltaRenew: .10, DemandSwing: 1.0}, // ~188
	{Code: "AU-WA", Name: "Western Australia", Continent: Oceania, Lat: -31.95, Lon: 115.86,
		Mix:        m(.30, .45, .02, 0, 0, .13, 0, .10, 0),
		DeltaRenew: .04, DemandSwing: .9}, // ~521
	{Code: "AU-TAS", Name: "Tasmania", Continent: Oceania, Lat: -42.88, Lon: 147.33,
		Mix:        m(0, .02, 0, 0, 0, .01, .81, .16, 0),
		DeltaRenew: .01, DemandSwing: 1.0}, // ~20
	{Code: "NZ", Name: "New Zealand", Continent: Oceania, Lat: -41.29, Lon: 174.78,
		Mix:        m(.04, .12, 0, .01, .18, .01, .56, .08, 0),
		DeltaRenew: .02, DemandSwing: 1.0}, // ~112

	// --------------------------------------------------------- South America
	{Code: "BR-CS", Name: "Brazil Central-South", Continent: SouthAmerica, Lat: -23.55, Lon: -46.63,
		Providers: GCP | AWS | Azure | IBM, Mix: m(.02, .08, .01, .05, 0, .03, .65, .12, .04),
		DeltaRenew: .03, DemandSwing: .8}, // ~85
	{Code: "BR-NE", Name: "Brazil North-East", Continent: SouthAmerica, Lat: -8.05, Lon: -34.88,
		Mix:        m(.01, .10, .01, .05, 0, .08, .35, .40, 0),
		DeltaRenew: .08, DemandSwing: .7}, // ~85
	{Code: "CL", Name: "Chile", Continent: SouthAmerica, Lat: -33.45, Lon: -70.67,
		Providers: GCP, Mix: m(.15, .18, .02, .02, .01, .14, .38, .10, 0),
		DeltaRenew: .09, DemandSwing: .9}, // ~258
	{Code: "AR", Name: "Argentina", Continent: SouthAmerica, Lat: -34.60, Lon: -58.38,
		Mix:        m(.01, .58, .04, .02, 0, .02, .20, .08, .05),
		DeltaRenew: -.07, DemandSwing: .9}, // ~322
	{Code: "UY", Name: "Uruguay", Continent: SouthAmerica, Lat: -34.90, Lon: -56.16,
		Mix:        m(0, .02, .02, .12, 0, .03, .45, .36, 0),
		DeltaRenew: .06, DemandSwing: .8}, // ~60
	{Code: "PE", Name: "Peru", Continent: SouthAmerica, Lat: -12.05, Lon: -77.04,
		Mix:        m(.01, .35, .01, .01, 0, .02, .58, .02, 0),
		DeltaRenew: .01, DemandSwing: .7}, // ~192
	{Code: "CO", Name: "Colombia", Continent: SouthAmerica, Lat: 4.71, Lon: -74.07,
		Mix:        m(.08, .15, .01, .01, 0, .01, .73, .01, 0),
		DeltaRenew: .01, DemandSwing: .6}, // ~166
	{Code: "PY", Name: "Paraguay", Continent: SouthAmerica, Lat: -25.26, Lon: -57.58,
		Mix:        m(0, 0, .02, .005, 0, 0, .975, 0, 0),
		DeltaRenew: 0, DemandSwing: .6}, // ~26

	// ---------------------------------------------------------------- Africa
	{Code: "ZA", Name: "South Africa", Continent: Africa, Lat: -26.20, Lon: 28.05,
		Providers: AWS | Azure, Mix: m(.72, .04, .01, .01, 0, .04, .01, .12, .05),
		DeltaRenew: -.05, DemandSwing: .9}, // ~722
	{Code: "EG", Name: "Egypt", Continent: Africa, Lat: 30.04, Lon: 31.24,
		Mix:        m(.02, .77, .08, 0, 0, .03, .07, .03, 0),
		DeltaRenew: -.06, DemandSwing: .7}, // ~444
	{Code: "NG", Name: "Nigeria", Continent: Africa, Lat: 6.52, Lon: 3.38,
		Mix:        m(0, .78, .02, 0, 0, .01, .19, 0, 0),
		DeltaRenew: -.05, DemandSwing: .4}, // ~387
	{Code: "KE", Name: "Kenya", Continent: Africa, Lat: -1.29, Lon: 36.82,
		Mix:        m(0, .08, .08, .02, .45, .02, .30, .05, 0),
		DeltaRenew: .02, DemandSwing: .5}, // ~121
	{Code: "MA", Name: "Morocco", Continent: Africa, Lat: 33.57, Lon: -7.59,
		Mix:        m(.60, .12, .05, 0, 0, .06, .04, .13, 0),
		DeltaRenew: -.04, DemandSwing: .8}, // ~672
}
