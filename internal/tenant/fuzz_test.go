package tenant

import (
	"strings"
	"testing"
)

// FuzzDecodeTenantConfig hammers ParseConfig with hostile documents:
// it must never panic, and anything it accepts must survive a
// re-validation round trip through NewConfig (i.e. validation actually
// normalized the specs it let through).
func FuzzDecodeTenantConfig(f *testing.F) {
	f.Add([]byte(`{"tenants": [{"name": "web", "class": "interactive", "weight": 3, "quota_jobs_per_hour": 10}]}`))
	f.Add([]byte(`[{"name": "a"}, {"name": "*", "rate_per_sec": 2.5, "burst": 8}]`))
	// Hostile names.
	f.Add([]byte(`[{"name": "../../etc/passwd"}]`))
	f.Add([]byte(`[{"name": "a\"},{\"evil"}]`))
	f.Add([]byte(`[{"name": "` + strings.Repeat("x", MaxNameLen+1) + `"}]`))
	f.Add([]byte(`[{"name": "label\"injection{x=\"y"}]`))
	// Zero and negative weights.
	f.Add([]byte(`[{"name": "z", "weight": 0}]`))
	f.Add([]byte(`[{"name": "z", "weight": -9000}]`))
	// Duplicate tenants.
	f.Add([]byte(`[{"name": "dup"}, {"name": "dup", "class": "scavenger"}]`))
	// Shape confusion.
	f.Add([]byte(`{"tenants": {"name": "a"}}`))
	f.Add([]byte(`{"tenants": []}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[{"name": "a", "rate_per_sec": 1e308}, {"name": "b", "burst": -1}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return
		}
		// Accepted configs must be internally coherent and re-validate.
		if len(cfg.Tenants) == 0 {
			t.Fatal("accepted config with no tenants")
		}
		for _, sp := range cfg.Tenants {
			if sp.Name != CatchAll && (!NameOK(sp.Name) || sp.Name == "") {
				t.Fatalf("accepted bad name %q", sp.Name)
			}
			if sp.Weight < 1 || sp.QuotaJobsPerHour < 0 || sp.RatePerSec < 0 || sp.Burst < 0 {
				t.Fatalf("accepted bad limits: %+v", sp)
			}
		}
		if _, err := NewConfig(cfg.Tenants); err != nil {
			t.Fatalf("accepted config fails re-validation: %v", err)
		}
		if cfg.Fingerprint() == "" {
			t.Fatal("accepted config has empty fingerprint")
		}
	})
}
