package tenant

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

func mustConfig(t *testing.T, specs ...Spec) *Config {
	t.Helper()
	cfg, err := NewConfig(specs)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{"tenants": [
		{"name": "web", "class": "interactive", "weight": 3, "quota_jobs_per_hour": 10},
		{"name": "etl", "rate_per_sec": 2.5, "burst": 8},
		{"name": "spot", "class": "scavenger"},
		{"name": "*", "quota_jobs_per_hour": 5}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp, known := cfg.Lookup("web"); !known || sp.Class != Interactive || sp.Weight != 3 {
		t.Fatalf("web spec: %+v known=%v", sp, known)
	}
	if sp, known := cfg.Lookup("etl"); !known || sp.Class != Batch || sp.Weight != 1 {
		t.Fatalf("etl defaults: %+v known=%v", sp, known)
	}
	// Unknown names fall back to the catch-all with the asked-for name.
	if sp, known := cfg.Lookup("stranger"); known || sp.QuotaJobsPerHour != 5 || sp.Name != "stranger" {
		t.Fatalf("catch-all: %+v known=%v", sp, known)
	}
	// The empty tenant normalizes to "default".
	if sp, _ := cfg.Lookup(""); sp.Name != DefaultName {
		t.Fatalf("empty tenant resolved to %q", sp.Name)
	}
	if got := cfg.Names(); !reflect.DeepEqual(got, []string{"etl", "spot", "web"}) {
		t.Fatalf("Names() = %v", got)
	}

	// A bare array works too.
	if _, err := ParseConfig([]byte(`[{"name": "a"}]`)); err != nil {
		t.Fatalf("bare array: %v", err)
	}

	bad := map[string]string{
		"empty":          `{"tenants": []}`,
		"no name":        `[{"weight": 2}]`,
		"hostile name":   `[{"name": "../../etc"}]`,
		"overlong name":  `[{"name": "` + strings.Repeat("x", MaxNameLen+1) + `"}]`,
		"duplicate":      `[{"name": "a"}, {"name": "a"}]`,
		"negative quota": `[{"name": "a", "quota_jobs_per_hour": -1}]`,
		"negative rate":  `[{"name": "a", "rate_per_sec": -0.5}]`,
		"unknown class":  `[{"name": "a", "class": "platinum"}]`,
		"negative wt":    `[{"name": "a", "weight": -2}]`,
		"not json":       `tenants: [a]`,
	}
	for what, doc := range bad {
		if _, err := ParseConfig([]byte(doc)); err == nil {
			t.Errorf("%s accepted: %s", what, doc)
		}
	}
	// Zero weight is "unset", not hostile: it defaults to 1.
	cfg, err = ParseConfig([]byte(`[{"name": "z", "weight": 0}]`))
	if err != nil {
		t.Fatal(err)
	}
	if sp, _ := cfg.Lookup("z"); sp.Weight != 1 {
		t.Fatalf("zero weight defaulted to %d, want 1", sp.Weight)
	}
}

func TestFingerprintCanonical(t *testing.T) {
	a := mustConfig(t, Spec{Name: "x", Class: Interactive, Weight: 2}, Spec{Name: "y"})
	b := mustConfig(t, Spec{Name: "y"}, Spec{Name: "x", Class: Interactive, Weight: 2})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("order-sensitive fingerprint: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	c := mustConfig(t, Spec{Name: "x", Class: Interactive, Weight: 3}, Spec{Name: "y"})
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("weight change did not move the fingerprint")
	}
	// Admission limits are not scheduling state.
	d := mustConfig(t, Spec{Name: "x", Class: Interactive, Weight: 2, QuotaJobsPerHour: 9}, Spec{Name: "y"})
	if a.Fingerprint() != d.Fingerprint() {
		t.Fatal("quota change moved the fingerprint")
	}
}

func TestGateQuota(t *testing.T) {
	cfg := mustConfig(t, Spec{Name: "a", QuotaJobsPerHour: 5}, Spec{Name: "b"})
	g := NewGate(cfg, nil)

	if err := g.Check("a", 5, 0); err != nil {
		t.Fatal(err)
	}
	g.Commit("a", 5, 0)
	if err := g.Check("a", 1, 0); err == nil {
		t.Fatal("6th job at hour 0 admitted past quota 5")
	}
	// Unlimited tenants never hit the quota path.
	if err := g.Check("b", 1000, 0); err != nil {
		t.Fatal(err)
	}
	// The window resets when the hour moves.
	if err := g.Check("a", 5, 1); err != nil {
		t.Fatal(err)
	}
	g.Commit("a", 3, 1)
	if got := g.Admitted("a", 1); got != 3 {
		t.Fatalf("Admitted(a,1) = %d", got)
	}
	if got := g.Admitted("a", 0); got != 0 {
		t.Fatalf("stale hour count survived: %d", got)
	}

	// Reset (the recovery path) seeds the window.
	g.Reset(7, map[string]int{"a": 4})
	if err := g.Check("a", 2, 7); err == nil {
		t.Fatal("reset count ignored")
	}
	if err := g.Check("a", 1, 7); err != nil {
		t.Fatal(err)
	}
}

func TestGateRate(t *testing.T) {
	cfg := mustConfig(t, Spec{Name: "a", RatePerSec: 2, Burst: 4})
	now := time.Unix(1000, 0)
	g := NewGate(cfg, func() time.Time { return now })

	// Burst drains, then refills at 2/s.
	if err := g.Check("a", 4, 0); err != nil {
		t.Fatal(err)
	}
	g.Commit("a", 4, 0)
	if err := g.Check("a", 1, 0); err == nil {
		t.Fatal("empty bucket admitted")
	}
	now = now.Add(500 * time.Millisecond) // +1 token
	if err := g.Check("a", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Check("a", 2, 0); err == nil {
		t.Fatal("2 jobs on 1 token admitted")
	}
	now = now.Add(time.Hour) // refill caps at burst
	if err := g.Check("a", 5, 0); err == nil {
		t.Fatal("refill exceeded burst")
	}
	if err := g.Check("a", 4, 0); err != nil {
		t.Fatal(err)
	}
}

// TestGateQuotaProperty: under a random admission stream, the admitted
// count per (tenant, hour) never exceeds the quota — the admission half
// of the tenancy invariants.
func TestGateQuotaProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		quotas := map[string]int{"a": 1 + rng.Intn(5), "b": 1 + rng.Intn(10), "c": 0}
		cfg := mustConfig(t,
			Spec{Name: "a", QuotaJobsPerHour: quotas["a"]},
			Spec{Name: "b", QuotaJobsPerHour: quotas["b"]},
			Spec{Name: "c"},
		)
		g := NewGate(cfg, nil)
		admitted := map[string]map[int]int{}
		for hour := 0; hour < 20; hour++ {
			for try := 0; try < 30; try++ {
				name := []string{"a", "b", "c"}[rng.Intn(3)]
				n := 1 + rng.Intn(3)
				if g.Check(name, n, hour) != nil {
					continue
				}
				g.Commit(name, n, hour)
				if admitted[name] == nil {
					admitted[name] = map[int]int{}
				}
				admitted[name][hour] += n
			}
		}
		for name, byHour := range admitted {
			q := quotas[name]
			if q == 0 {
				continue
			}
			for hour, n := range byHour {
				if n > q {
					t.Fatalf("seed %d: tenant %s admitted %d > quota %d at hour %d", seed, name, n, q, hour)
				}
			}
		}
	}
}

func TestFairQueueOrder(t *testing.T) {
	cfg := mustConfig(t,
		Spec{Name: "web", Class: Interactive}, // weight 100
		Spec{Name: "etl", Class: Batch},       // weight 10
		Spec{Name: "spot", Class: Scavenger},  // weight 1
	)
	q := NewFairQueue(cfg)

	// Fresh deficits: the interactive tenant leads, and same-tenant
	// entries keep submission order.
	names := []string{"spot", "web", "etl", "web", "spot"}
	perm := q.Order(names)
	if names[perm[0]] != "web" || names[perm[1]] != "web" {
		t.Fatalf("interactive tenant did not lead: %v", perm)
	}
	if perm[0] != 1 || perm[1] != 3 {
		t.Fatalf("intra-tenant order broken: %v", perm)
	}

	// Determinism: same inputs on equal state, same permutation.
	q2 := NewFairQueue(cfg)
	q2.Order(names)
	p1 := q.Order(names)
	p2 := q2.Order(names)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("nondeterministic order: %v vs %v", p1, p2)
	}
}

// TestFairQueueConverges: under saturation (1 slot/hour), long-run
// service shares approach the weight ratio, and the scavenger is never
// starved outright.
func TestFairQueueConverges(t *testing.T) {
	cfg := mustConfig(t,
		Spec{Name: "web", Class: Interactive},
		Spec{Name: "spot", Class: Scavenger},
	)
	q := NewFairQueue(cfg)
	served := map[string]int{}
	names := []string{"web", "web", "web", "spot", "spot"} // always backlogged
	const hours = 1010
	for h := 0; h < hours; h++ {
		perm := q.Order(names)
		first := Normalize(names[perm[0]])
		served[first]++
		q.Charge(first) // one slot per hour
	}
	if served["spot"] == 0 {
		t.Fatal("scavenger starved under interactive saturation")
	}
	// Weight ratio 100:1 → spot should get about 1% of the slots.
	if served["spot"] < hours/200 || served["spot"] > hours/20 {
		t.Fatalf("scavenger share %d/%d far from weight share", served["spot"], hours)
	}
}

func TestFairQueueSnapshotRestore(t *testing.T) {
	cfg := mustConfig(t, Spec{Name: "a"}, Spec{Name: "b", Class: Interactive})
	q := NewFairQueue(cfg)
	q.Order([]string{"a", "b", "a"})
	q.Charge("a")
	q.Charge("b")
	q.Charge("b")
	vt, names, passes := q.Snapshot()

	r := NewFairQueue(cfg)
	if err := r.Restore(vt, names, passes); err != nil {
		t.Fatal(err)
	}
	v2, n2, p2 := r.Snapshot()
	if v2 != vt || !reflect.DeepEqual(names, n2) || !reflect.DeepEqual(passes, p2) {
		t.Fatalf("snapshot round trip: %d/%v/%v vs %d/%v/%v", vt, names, passes, v2, n2, p2)
	}
	// The restored queue orders identically.
	probe := []string{"a", "b", "b", "a"}
	if !reflect.DeepEqual(q.Order(probe), r.Order(probe)) {
		t.Fatal("restored queue orders differently")
	}

	if err := r.Restore(0, []string{"x"}, nil); err == nil {
		t.Fatal("mismatched restore lengths accepted")
	}
	if err := r.Restore(0, []string{"bad name!"}, []int64{1}); err == nil {
		t.Fatal("hostile restored name accepted")
	}
	if err := r.Restore(-1, nil, nil); err == nil {
		t.Fatal("negative vtime accepted")
	}
}
