package tenant

import (
	"fmt"
	"sort"
)

// passScale is the virtual-time unit: one executed job-hour advances a
// tenant's pass by passScale / effectiveWeight. The scale leaves
// integer headroom for very large configured weights (validation caps
// Weight at MaxWeight) while keeping pass arithmetic exact.
const passScale = 1 << 32

// FairQueue is the weighted-fair dequeue engine the fleet applies to
// its policy-eligible job list every Step — deficit round robin in its
// virtual-time (stride) formulation. Each tenant carries a pass value:
// its cumulative service normalized by its effective weight (class
// multiplier × tenant weight). Every executed job-hour advances the
// serving tenant's pass by passScale/weight, and the eligible list is
// ordered least-pass-first, so long-run service shares converge to the
// weight ratio. A scavenger tenant's pass advances ~100× faster per
// served hour than an interactive tenant's, which is exactly what
// guarantees it is served ~1/100th of the time rather than never —
// the starvation-freedom property TestTenancyInvariants pins.
//
// vtime is the served frontier: the smallest pass among currently
// backlogged tenants, advanced at Order time. A tenant first seen (or
// returning from idle below the frontier) starts at vtime + stride,
// the standard stride-scheduling join rule — so a tenant that shows up
// late cannot monopolize the fleet while it "catches up" on virtual
// time it never queued for, and on a fresh queue the highest-weight
// tenant (smallest stride) is the first served.
//
// Everything here is deterministic integer arithmetic over sorted
// names: the same (eligible list, pass state) always yields the same
// order, which is what keeps serial-vs-sharded byte-equivalence and
// crash/replication replay intact. Pass state is fleet state — the
// fleet serializes it through Snapshot/Restore in its image.
//
// A FairQueue is not safe for concurrent use; the fleet only touches
// it in the serial sections of Step and under its world lock during
// Marshal/Unmarshal.
type FairQueue struct {
	cfg     *Config
	strides map[string]int64 // resolved passScale/weight, lazily cached

	pass  map[string]int64
	vtime int64
}

// NewFairQueue builds the dequeue engine over a tenant registry (nil
// config = every tenant at the default batch weight, still fair).
func NewFairQueue(cfg *Config) *FairQueue {
	return &FairQueue{
		cfg:     cfg,
		strides: make(map[string]int64),
		pass:    make(map[string]int64),
	}
}

// Fingerprint identifies the scheduling-relevant tenancy config for
// the fleet image's world check.
func (q *FairQueue) Fingerprint() string {
	if q == nil {
		return ""
	}
	return q.cfg.Fingerprint()
}

func (q *FairQueue) stride(name string) int64 {
	if s, ok := q.strides[name]; ok {
		return s
	}
	sp, _ := q.cfg.Lookup(name)
	s := int64(passScale / sp.effectiveWeight())
	if s < 1 {
		s = 1
	}
	q.strides[name] = s
	return s
}

// touch materializes a tenant's pass entry: first sight joins at
// vtime + stride, a return from idle below the frontier lifts to
// vtime. Returns the (possibly updated) pass.
func (q *FairQueue) touch(t string) int64 {
	p, ok := q.pass[t]
	switch {
	case !ok:
		p = q.vtime + q.stride(t)
		q.pass[t] = p
	case p < q.vtime:
		p = q.vtime
		q.pass[t] = p
	}
	return p
}

// Order computes the fair dequeue permutation for one hour's eligible
// list, given the tenant name of each entry ("" meaning default).
// perm[k] is the index into names of the k'th job to offer the policy;
// entries of the same tenant keep their relative (submission) order.
// New or below-frontier tenants are touched in first, then vtime
// advances to the smallest present pass; the per-job pass advancement
// used to interleave within the hour is projected only — persistent
// pass moves solely via Charge, on actual execution.
func (q *FairQueue) Order(names []string) []int {
	perm := make([]int, len(names))
	if len(names) == 0 {
		return perm
	}
	// Group by tenant in first-appearance order.
	byTenant := make(map[string][]int)
	var tenants []string
	for i, raw := range names {
		t := Normalize(raw)
		if _, seen := byTenant[t]; !seen {
			tenants = append(tenants, t)
		}
		byTenant[t] = append(byTenant[t], i)
	}
	if len(tenants) == 1 {
		for i := range perm {
			perm[i] = i
		}
		return perm
	}
	// Deterministic tie-breaking below wants a canonical tenant order.
	sort.Strings(tenants)
	proj := make(map[string]int64, len(tenants))
	next := make(map[string]int, len(tenants))
	var frontier int64
	for i, t := range tenants {
		p := q.touch(t)
		proj[t] = p
		if i == 0 || p < frontier {
			frontier = p
		}
	}
	if frontier > q.vtime {
		q.vtime = frontier
	}
	for k := range perm {
		best := ""
		var bestPass int64
		for _, t := range tenants {
			if next[t] >= len(byTenant[t]) {
				continue
			}
			if best == "" || proj[t] < bestPass {
				best, bestPass = t, proj[t]
			}
		}
		perm[k] = byTenant[best][next[best]]
		next[best]++
		proj[best] += q.stride(best)
	}
	return perm
}

// Charge records one executed job-hour against the tenant — called
// from the fleet's serial epilogue for every job that ran (forced or
// policy-placed: both consumed capacity). Per-tenant increments
// commute, so the epilogue's submission-order iteration and any
// restore-replay agree on the final state.
func (q *FairQueue) Charge(name string) {
	t := Normalize(name)
	q.pass[t] = q.touch(t) + q.stride(t)
}

// Pass returns a tenant's current virtual-time pass (tests and stats).
func (q *FairQueue) Pass(name string) int64 {
	return q.pass[Normalize(name)]
}

// Snapshot returns the pass state as the virtual-time frontier plus
// parallel name/value slices in sorted-name order — the deterministic
// form the fleet image encodes. (Materialized passes are always
// positive — entries join at vtime + stride ≥ 1 — so filtering zeros
// is a no-op kept as belt-and-suspenders.)
func (q *FairQueue) Snapshot() (vtime int64, names []string, passes []int64) {
	if q == nil {
		return 0, nil, nil
	}
	names = make([]string, 0, len(q.pass))
	for t, p := range q.pass {
		if p != 0 {
			names = append(names, t)
		}
	}
	sort.Strings(names)
	passes = make([]int64, len(names))
	for i, t := range names {
		passes[i] = q.pass[t]
	}
	return q.vtime, names, passes
}

// Restore replaces the pass state (the fleet Unmarshal path).
func (q *FairQueue) Restore(vtime int64, names []string, passes []int64) error {
	if len(names) != len(passes) {
		return fmt.Errorf("tenant: restore: %d names, %d passes", len(names), len(passes))
	}
	if vtime < 0 {
		return fmt.Errorf("tenant: restore: negative vtime %d", vtime)
	}
	q.vtime = vtime
	q.pass = make(map[string]int64, len(names))
	for i, t := range names {
		if !NameOK(t) || t == "" {
			return fmt.Errorf("tenant: restore: bad tenant name %q", t)
		}
		if passes[i] < 0 {
			return fmt.Errorf("tenant: restore: tenant %q negative pass %d", t, passes[i])
		}
		q.pass[t] = passes[i]
	}
	return nil
}
