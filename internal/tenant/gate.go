package tenant

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// ErrQuota and ErrRate classify admission rejections so the service
// layer can map both to 429 while counting them under distinct
// backpressure reasons.
var (
	ErrQuota = errors.New("tenant quota exceeded")
	ErrRate  = errors.New("tenant rate limited")
)

// retryableError decorates a rejection with the wall-clock seconds
// after which a retry can succeed — the Retry-After hint. It unwraps
// to the underlying classification error, so errors.Is(err, ErrRate)
// keeps working, and its message is the undecorated rejection.
type retryableError struct {
	err   error
	after int
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// RetryAfterSeconds extracts the retry hint carried by an admission
// rejection, or 0 if the error carries none.
func RetryAfterSeconds(err error) int {
	var re *retryableError
	if errors.As(err, &re) {
		return re.after
	}
	return 0
}

// Gate enforces per-tenant admission limits: a jobs-per-fleet-hour
// quota (deterministic — keyed to the replayed hour, so property tests
// and recovery replay agree) and a wall-clock token bucket (protecting
// the real service from request floods; the clock is injectable for
// tests).
//
// Check and Commit are split because the caller's fleet submission can
// still fail between them: Check (under the fleet's read lock, where
// the hour is frozen) proves the batch would fit, Commit (after the
// fleet accepted it) consumes quota and tokens. Both are safe for
// concurrent use, though internal/schedd already serializes them under
// its admission lock.
type Gate struct {
	cfg *Config
	now func() time.Time

	mu      sync.Mutex
	hours   map[string]*hourCount
	buckets map[string]*bucket
}

// hourCount tracks one tenant's admissions in one fleet hour; the
// window resets whenever the hour moves (hours are monotone in both
// live serving and replay).
type hourCount struct {
	hour int
	n    int
}

// bucket is a standard token bucket: tokens refill at rate/sec up to
// burst, one token per admitted job.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewGate builds a gate over the config. now is the token-bucket
// clock; nil means time.Now.
func NewGate(cfg *Config, now func() time.Time) *Gate {
	if now == nil {
		now = time.Now
	}
	return &Gate{
		cfg:     cfg,
		now:     now,
		hours:   make(map[string]*hourCount),
		buckets: make(map[string]*bucket),
	}
}

// Check reports whether admitting n more jobs for the tenant at the
// given fleet hour would violate its quota or rate limit. It consumes
// nothing.
func (g *Gate) Check(name string, n, hour int) error {
	if g == nil {
		return nil
	}
	name = Normalize(name)
	sp, _ := g.cfg.Lookup(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	if q := sp.QuotaJobsPerHour; q > 0 {
		used := 0
		if hc := g.hours[name]; hc != nil && hc.hour == hour {
			used = hc.n
		}
		if used+n > q {
			return fmt.Errorf("tenant %q: %w (%d/%d jobs at hour %d)", name, ErrQuota, used+n, q, hour)
		}
	}
	if sp.RatePerSec > 0 {
		if tokens := g.peekTokens(name, sp); tokens < float64(n) {
			// The bucket refills at RatePerSec, so the deficit divided
			// by the rate is exactly how long the caller must wait.
			after := int(math.Ceil((float64(n) - tokens) / sp.RatePerSec))
			if after < 1 {
				after = 1
			}
			return &retryableError{
				err:   fmt.Errorf("tenant %q: %w (%.3g jobs/s)", name, ErrRate, sp.RatePerSec),
				after: after,
			}
		}
	}
	return nil
}

// Commit records n admitted jobs for the tenant at the given hour,
// consuming quota window and rate tokens.
func (g *Gate) Commit(name string, n, hour int) {
	if g == nil {
		return
	}
	name = Normalize(name)
	sp, _ := g.cfg.Lookup(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	hc := g.hours[name]
	if hc == nil {
		hc = &hourCount{hour: hour}
		g.hours[name] = hc
	}
	if hc.hour != hour {
		hc.hour, hc.n = hour, 0
	}
	hc.n += n
	if sp.RatePerSec > 0 {
		g.peekTokens(name, sp) // refill to now
		g.buckets[name].tokens -= float64(n)
	}
}

// peekTokens refills the tenant's bucket to the current instant and
// returns the balance. Callers hold g.mu.
func (g *Gate) peekTokens(name string, sp Spec) float64 {
	b := g.buckets[name]
	now := g.now()
	if b == nil {
		burst := sp.Burst
		if burst < 1 {
			burst = int(sp.RatePerSec)
			if burst < 1 {
				burst = 1
			}
		}
		b = &bucket{tokens: float64(burst), last: now}
		g.buckets[name] = b
		return b.tokens
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		burst := sp.Burst
		if burst < 1 {
			burst = int(sp.RatePerSec)
			if burst < 1 {
				burst = 1
			}
		}
		b.tokens += dt * sp.RatePerSec
		if max := float64(burst); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
	return b.tokens
}

// Reset replaces the quota windows with the given per-tenant counts at
// the given hour — the crash-recovery and follower-promotion path,
// where the current hour's admissions are rebuilt from the recovered
// fleet so quota enforcement continues exactly where the previous
// primary stopped. Token buckets restart full: wall-clock state does
// not survive a process.
func (g *Gate) Reset(hour int, counts map[string]int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hours = make(map[string]*hourCount, len(counts))
	g.buckets = make(map[string]*bucket)
	for name, n := range counts {
		g.hours[Normalize(name)] = &hourCount{hour: hour, n: n}
	}
}

// Admitted returns the tenant's admission count in the given hour.
func (g *Gate) Admitted(name string, hour int) int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if hc := g.hours[Normalize(name)]; hc != nil && hc.hour == hour {
		return hc.n
	}
	return 0
}

// Config returns the gate's tenant registry.
func (g *Gate) Config() *Config {
	if g == nil {
		return nil
	}
	return g.cfg
}
