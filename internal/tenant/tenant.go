// Package tenant is the multi-tenancy model for the online scheduler:
// named tenants with priority classes, per-tenant admission quotas and
// token-bucket rate limits (the Gate), and a weighted deficit-round-
// robin dequeue engine (the FairQueue) that internal/sched applies to
// the policy-eligible job list each Step.
//
// The split mirrors where enforcement has to happen. Admission control
// is a service concern — internal/schedd consults the Gate under its
// admission lock and maps violations to 429 — while fair dequeue is a
// scheduling concern that must be deterministic and serializable:
// FairQueue state rides the fleet image (internal/sched/state.go) so a
// recovered or replicated fleet reorders exactly like the original.
//
// The resource model follows the shape of multi-tenant authorization
// layers (a flat registry of named principals, each carrying its own
// limits and a default for the unnamed principal): jobs without a
// tenant belong to "default", and unknown tenant names fall back to
// the catch-all "*" spec when the config declares one.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// DefaultName is the tenant every untagged job belongs to.
const DefaultName = "default"

// CatchAll, when present in a config, supplies the limits and weight
// applied to tenant names the config does not list.
const CatchAll = "*"

// MaxNameLen bounds tenant-name length; names also pass nameOK, so a
// hostile submission cannot smuggle label-breaking bytes into metrics
// or unbounded strings into the journal.
const MaxNameLen = 64

// Class is a tenant's priority class. Classes multiply the tenant's
// weight in the fair-dequeue engine rather than imposing strict
// priority, so the lowest class is never starved outright: under
// saturating interactive load a scavenger tenant still accrues deficit
// and is served at roughly classWeight ratios.
type Class string

const (
	Interactive Class = "interactive"
	Batch       Class = "batch"
	Scavenger   Class = "scavenger"
)

// classWeight is the service-share multiplier per class.
func classWeight(c Class) int {
	switch c {
	case Interactive:
		return 100
	case Scavenger:
		return 1
	default: // Batch
		return 10
	}
}

// ParseClass validates a class name ("" defaults to Batch).
func ParseClass(s string) (Class, error) {
	switch Class(s) {
	case "":
		return Batch, nil
	case Interactive, Batch, Scavenger:
		return Class(s), nil
	}
	return "", fmt.Errorf("tenant: unknown class %q (want interactive, batch, or scavenger)", s)
}

// Spec is one tenant's declaration, as decoded from the -tenants JSON
// file. Zero values mean "default" for Weight (1) and Class (batch),
// and "unlimited" for the quota and rate fields.
type Spec struct {
	// Name identifies the tenant; "*" declares the catch-all spec for
	// unlisted tenant names.
	Name string `json:"name"`
	// Class is interactive, batch (default), or scavenger.
	Class Class `json:"class,omitempty"`
	// Weight scales the tenant's fair share within its class (default 1).
	Weight int `json:"weight,omitempty"`
	// QuotaJobsPerHour caps admissions per fleet hour (0 = unlimited).
	QuotaJobsPerHour int `json:"quota_jobs_per_hour,omitempty"`
	// RatePerSec and Burst configure the wall-clock token bucket
	// (RatePerSec 0 = unlimited; Burst 0 defaults to max(1, RatePerSec)).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
}

// effectiveWeight is the spec's share in the DRR engine: class
// multiplier × tenant weight.
func (s Spec) effectiveWeight() int {
	w := s.Weight
	if w < 1 {
		w = 1
	}
	c := s.Class
	if c == "" {
		c = Batch
	}
	return w * classWeight(c)
}

// Config is a validated tenant registry.
type Config struct {
	Tenants []Spec `json:"tenants"`

	byName map[string]Spec
}

// NameOK reports whether a tenant name is structurally acceptable on a
// job: empty (meaning default) or 1..MaxNameLen bytes of
// [A-Za-z0-9._-]. The bound keeps hostile names out of metric labels,
// log lines, and the journal.
func NameOK(name string) bool {
	if name == "" {
		return true
	}
	if len(name) > MaxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '.' || c == '_' || c == '-' {
			continue
		}
		return false
	}
	return true
}

// Normalize maps the empty tenant to DefaultName.
func Normalize(name string) string {
	if name == "" {
		return DefaultName
	}
	return name
}

// ParseConfig decodes and validates a tenants JSON document — either
// {"tenants": [...]} or a bare [...] array of Specs. It rejects
// duplicate or malformed names, negative weights/limits, and unknown
// classes; it never panics on hostile input (fuzzed by
// FuzzDecodeTenantConfig).
func ParseConfig(data []byte) (*Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		var specs []Spec
		if err2 := json.Unmarshal(data, &specs); err2 != nil {
			return nil, fmt.Errorf("tenant: config decode: %w", err)
		}
		cfg.Tenants = specs
	}
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("tenant: config declares no tenants")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// NewConfig validates an in-memory spec list (the non-file
// construction path used by tests and cmd/schedd's follower copy).
func NewConfig(specs []Spec) (*Config, error) {
	cfg := &Config{Tenants: specs}
	if len(specs) == 0 {
		return nil, errors.New("tenant: config declares no tenants")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

func (c *Config) validate() error {
	c.byName = make(map[string]Spec, len(c.Tenants))
	for i := range c.Tenants {
		sp := &c.Tenants[i]
		if sp.Name != CatchAll && (sp.Name == "" || !NameOK(sp.Name)) {
			return fmt.Errorf("tenant: bad tenant name %q (want 1..%d bytes of [A-Za-z0-9._-], or %q)", sp.Name, MaxNameLen, CatchAll)
		}
		if _, dup := c.byName[sp.Name]; dup {
			return fmt.Errorf("tenant: duplicate tenant %q", sp.Name)
		}
		cl, err := ParseClass(string(sp.Class))
		if err != nil {
			return fmt.Errorf("tenant %q: %w", sp.Name, err)
		}
		sp.Class = cl
		if sp.Weight < 0 {
			return fmt.Errorf("tenant %q: negative weight %d", sp.Name, sp.Weight)
		}
		if sp.Weight == 0 {
			sp.Weight = 1
		}
		if sp.QuotaJobsPerHour < 0 {
			return fmt.Errorf("tenant %q: negative quota %d", sp.Name, sp.QuotaJobsPerHour)
		}
		if sp.RatePerSec < 0 || sp.RatePerSec != sp.RatePerSec {
			return fmt.Errorf("tenant %q: bad rate %v", sp.Name, sp.RatePerSec)
		}
		if sp.Burst < 0 {
			return fmt.Errorf("tenant %q: negative burst %d", sp.Name, sp.Burst)
		}
		c.byName[sp.Name] = *sp
	}
	return nil
}

// Lookup resolves a (normalized) tenant name to its spec: an exact
// match, the catch-all if declared, else the zero-limit default spec.
// known reports whether the name was explicitly declared.
func (c *Config) Lookup(name string) (sp Spec, known bool) {
	if c == nil {
		return Spec{Name: name, Class: Batch, Weight: 1}, false
	}
	name = Normalize(name)
	if sp, ok := c.byName[name]; ok {
		return sp, true
	}
	if sp, ok := c.byName[CatchAll]; ok {
		sp.Name = name
		return sp, false
	}
	return Spec{Name: name, Class: Batch, Weight: 1}, false
}

// Names lists the declared tenant names (catch-all excluded), sorted.
func (c *Config) Names() []string {
	if c == nil {
		return nil
	}
	out := make([]string, 0, len(c.Tenants))
	for _, sp := range c.Tenants {
		if sp.Name != CatchAll {
			out = append(out, sp.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Fingerprint is a canonical one-line rendering of every spec's
// scheduling-relevant fields (name, class, weight). The fleet image
// embeds it so a snapshot taken under one tenancy config is refused by
// a fleet running another — a silent mismatch would diverge
// placements. Admission limits are excluded: they never influence
// dequeue order.
func (c *Config) Fingerprint() string {
	if c == nil {
		return ""
	}
	parts := make([]string, 0, len(c.Tenants))
	for _, sp := range c.Tenants {
		parts = append(parts, fmt.Sprintf("%s:%s:%d", sp.Name, sp.Class, sp.Weight))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
