// Package energy converts compute activity into electrical energy and
// Scope 2 carbon emissions, the accounting frame of the paper's §2.1.
//
// The analyses in this repository mostly use the paper's own
// normalization (a job draws 1 kW, so g·CO₂eq == summed hourly
// intensity), but real deployments meter servers, not jobs. This
// package provides the standard linear server power model, facility
// overhead via PUE, and an accountant that integrates hourly facility
// power against a carbon-intensity trace to produce GHG-protocol-style
// Scope 2 totals.
package energy

import (
	"fmt"

	"carbonshift/internal/trace"
)

// ServerModel is the linear utilization→power model used across the
// datacenter-energy literature: power rises linearly from idle to peak
// with utilization.
type ServerModel struct {
	// IdleWatts is the draw at 0% utilization.
	IdleWatts float64
	// PeakWatts is the draw at 100% utilization. Must be >= IdleWatts.
	PeakWatts float64
}

// DefaultServer is a contemporary 2-socket server profile.
var DefaultServer = ServerModel{IdleWatts: 120, PeakWatts: 450}

// Validate reports configuration errors.
func (s ServerModel) Validate() error {
	if s.IdleWatts < 0 || s.PeakWatts < s.IdleWatts {
		return fmt.Errorf("energy: bad server model idle=%v peak=%v", s.IdleWatts, s.PeakWatts)
	}
	return nil
}

// Power returns the draw in watts at the given utilization in [0, 1].
// Utilization outside the range is clamped.
func (s ServerModel) Power(util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return s.IdleWatts + (s.PeakWatts-s.IdleWatts)*util
}

// Datacenter models one facility: a homogeneous server fleet plus
// cooling/distribution overhead expressed as PUE.
type Datacenter struct {
	// Servers is the fleet size.
	Servers int
	// Server is the per-server power model.
	Server ServerModel
	// PUE is the power usage effectiveness (facility power / IT
	// power), >= 1. Hyperscale facilities run ~1.1; enterprise ~1.6.
	PUE float64
}

// Validate reports configuration errors.
func (d Datacenter) Validate() error {
	if d.Servers < 0 {
		return fmt.Errorf("energy: negative server count %d", d.Servers)
	}
	if d.PUE < 1 {
		return fmt.Errorf("energy: PUE %v below 1", d.PUE)
	}
	return d.Server.Validate()
}

// FacilityKW returns total facility draw in kilowatts when the fleet
// runs at the given mean utilization.
func (d Datacenter) FacilityKW(util float64) float64 {
	return float64(d.Servers) * d.Server.Power(util) * d.PUE / 1000
}

// Report is an integrated Scope 2 accounting result.
type Report struct {
	// EnergyKWh is the total electrical energy consumed.
	EnergyKWh float64
	// EmissionsKg is the total Scope 2 emissions in kg·CO₂eq.
	EmissionsKg float64
	// Hours is the accounting window length.
	Hours int
}

// EffectiveCI returns the energy-weighted mean carbon intensity of the
// consumed electricity in g·CO₂eq/kWh.
func (r Report) EffectiveCI() float64 {
	if r.EnergyKWh == 0 {
		return 0
	}
	return 1000 * r.EmissionsKg / r.EnergyKWh
}

// Scope2 integrates an hourly facility-power series (kW, one entry per
// hour starting at trace hour `from`) against the trace's carbon
// intensity.
func Scope2(tr *trace.Trace, hourlyKW []float64, from int) (Report, error) {
	if from < 0 || from+len(hourlyKW) > tr.Len() {
		return Report{}, fmt.Errorf("energy: window [%d, %d) outside trace of %d hours",
			from, from+len(hourlyKW), tr.Len())
	}
	var rep Report
	for i, kw := range hourlyKW {
		if kw < 0 {
			return Report{}, fmt.Errorf("energy: negative power %v at hour %d", kw, from+i)
		}
		rep.EnergyKWh += kw // 1-hour steps: kW·h == kWh
		rep.EmissionsKg += kw * tr.At(from+i) / 1000
	}
	rep.Hours = len(hourlyKW)
	return rep, nil
}

// Scope2Utilization is Scope2 for a datacenter with an hourly
// utilization series.
func Scope2Utilization(tr *trace.Trace, dc Datacenter, hourlyUtil []float64, from int) (Report, error) {
	if err := dc.Validate(); err != nil {
		return Report{}, err
	}
	kw := make([]float64, len(hourlyUtil))
	for i, u := range hourlyUtil {
		if u < 0 || u > 1 {
			return Report{}, fmt.Errorf("energy: utilization %v at hour %d outside [0, 1]", u, from+i)
		}
		kw[i] = dc.FacilityKW(u)
	}
	return Scope2(tr, kw, from)
}
