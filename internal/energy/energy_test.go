package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"carbonshift/internal/trace"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestServerPowerLinear(t *testing.T) {
	s := ServerModel{IdleWatts: 100, PeakWatts: 300}
	cases := []struct{ util, want float64 }{
		{0, 100}, {0.5, 200}, {1, 300},
		{-1, 100}, {2, 300}, // clamped
	}
	for _, c := range cases {
		if got := s.Power(c.util); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Power(%v) = %v, want %v", c.util, got, c.want)
		}
	}
}

func TestServerValidate(t *testing.T) {
	if err := DefaultServer.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ServerModel{IdleWatts: -1, PeakWatts: 10}).Validate(); err == nil {
		t.Fatal("negative idle accepted")
	}
	if err := (ServerModel{IdleWatts: 100, PeakWatts: 50}).Validate(); err == nil {
		t.Fatal("peak < idle accepted")
	}
}

func TestDatacenterValidate(t *testing.T) {
	good := Datacenter{Servers: 100, Server: DefaultServer, PUE: 1.2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Datacenter{Servers: -1, Server: DefaultServer, PUE: 1.2}).Validate(); err == nil {
		t.Fatal("negative servers accepted")
	}
	if err := (Datacenter{Servers: 1, Server: DefaultServer, PUE: 0.9}).Validate(); err == nil {
		t.Fatal("PUE < 1 accepted")
	}
}

func TestFacilityKW(t *testing.T) {
	dc := Datacenter{
		Servers: 1000,
		Server:  ServerModel{IdleWatts: 100, PeakWatts: 300},
		PUE:     1.5,
	}
	// 1000 servers * 200 W * 1.5 = 300 kW at 50% utilization.
	if got := dc.FacilityKW(0.5); math.Abs(got-300) > 1e-9 {
		t.Fatalf("FacilityKW = %v, want 300", got)
	}
}

func TestScope2(t *testing.T) {
	tr := trace.New("X", t0, []float64{100, 200, 400, 100})
	// 2 kW for hours 1 and 2.
	rep, err := Scope2(tr, []float64{2, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnergyKWh != 4 {
		t.Fatalf("energy = %v", rep.EnergyKWh)
	}
	// 2 kWh * 200 g + 2 kWh * 400 g = 1200 g = 1.2 kg.
	if math.Abs(rep.EmissionsKg-1.2) > 1e-9 {
		t.Fatalf("emissions = %v", rep.EmissionsKg)
	}
	if math.Abs(rep.EffectiveCI()-300) > 1e-9 {
		t.Fatalf("effective CI = %v", rep.EffectiveCI())
	}
	if rep.Hours != 2 {
		t.Fatalf("hours = %v", rep.Hours)
	}
}

func TestScope2Errors(t *testing.T) {
	tr := trace.New("X", t0, []float64{100, 200})
	if _, err := Scope2(tr, []float64{1, 1, 1}, 0); err == nil {
		t.Fatal("overrun accepted")
	}
	if _, err := Scope2(tr, []float64{1}, -1); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := Scope2(tr, []float64{-1}, 0); err == nil {
		t.Fatal("negative power accepted")
	}
}

func TestEffectiveCIEmpty(t *testing.T) {
	if (Report{}).EffectiveCI() != 0 {
		t.Fatal("empty report effective CI nonzero")
	}
}

func TestScope2Utilization(t *testing.T) {
	tr := trace.New("X", t0, []float64{500, 500})
	dc := Datacenter{
		Servers: 10,
		Server:  ServerModel{IdleWatts: 100, PeakWatts: 300},
		PUE:     1.0,
	}
	rep, err := Scope2Utilization(tr, dc, []float64{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hour 0: 10*100 W = 1 kW. Hour 1: 10*300 W = 3 kW. Total 4 kWh.
	if math.Abs(rep.EnergyKWh-4) > 1e-9 {
		t.Fatalf("energy = %v", rep.EnergyKWh)
	}
	if _, err := Scope2Utilization(tr, dc, []float64{1.5}, 0); err == nil {
		t.Fatal("utilization > 1 accepted")
	}
	bad := dc
	bad.PUE = 0.5
	if _, err := Scope2Utilization(tr, bad, []float64{0.5}, 0); err == nil {
		t.Fatal("invalid datacenter accepted")
	}
}

// TestIdleEnergyDominatesAtLowUtilization encodes the system-design
// point of §5.3.1: underutilized datacenters burn most of their energy
// idling, which is why spatial shifting that strands capacity has a
// hidden cost.
func TestIdleEnergyDominatesAtLowUtilization(t *testing.T) {
	dc := Datacenter{Servers: 1, Server: DefaultServer, PUE: 1.1}
	idleShare := dc.FacilityKW(0) / dc.FacilityKW(0.1)
	if idleShare < 0.75 {
		t.Fatalf("idle share at 10%% utilization = %.2f, expected idle-dominated", idleShare)
	}
}

func TestQuickScope2Additive(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ci := make([]float64, len(raw))
		kw := make([]float64, len(raw))
		for i, v := range raw {
			ci[i] = float64(v) + 1
			kw[i] = float64(v%16) / 4
		}
		tr := trace.New("X", t0, ci)
		whole, err := Scope2(tr, kw, 0)
		if err != nil {
			return false
		}
		// Splitting the window must not change the totals.
		mid := len(kw) / 2
		a, err := Scope2(tr, kw[:mid], 0)
		if err != nil {
			return false
		}
		b, err := Scope2(tr, kw[mid:], mid)
		if err != nil {
			return false
		}
		return math.Abs(whole.EnergyKWh-(a.EnergyKWh+b.EnergyKWh)) < 1e-9 &&
			math.Abs(whole.EmissionsKg-(a.EmissionsKg+b.EmissionsKg)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
