module carbonshift

go 1.24
