// Command carbonsched runs the carbon-aware cluster-scheduler
// simulation and compares scheduling policies on the same job stream —
// the constrained counterpart to the analytical upper bounds that
// cmd/carbonlimits computes.
//
// Usage:
//
//	carbonsched                         # defaults: 3 regions, 400 jobs, 60 days
//	carbonsched -regions DE,SE,US-CA -jobs 1000 -slots 40
//	carbonsched -slack 168 -migratable 0.8 -interruptible 0.9 -workers 4
//
// The policies run concurrently on -workers goroutines (default: one
// per CPU) over the same deterministic job stream; the comparison table
// is identical for every worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"carbonshift/internal/engine"
	"carbonshift/internal/regions"
	"carbonshift/internal/sched"
	"carbonshift/internal/simgrid"
)

func main() {
	var (
		regionList    = flag.String("regions", "DE,SE,US-CA", "comma-separated cluster regions")
		jobs          = flag.Int("jobs", 400, "number of jobs")
		slots         = flag.Int("slots", 30, "slots per regional cluster")
		days          = flag.Int("days", 60, "simulation horizon in days")
		slack         = flag.Int("slack", 48, "per-job slack in hours")
		interruptible = flag.Float64("interruptible", 0.8, "fraction of interruptible jobs")
		migratable    = flag.Float64("migratable", 0.6, "fraction of migratable jobs")
		seed          = flag.Uint64("seed", 1, "simulation seed")
		workers       = flag.Int("workers", 0, "engine worker bound (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var regs []regions.Region
	var codes []string
	for _, code := range strings.Split(*regionList, ",") {
		code = strings.TrimSpace(code)
		r, ok := regions.ByCode(code)
		if !ok {
			fmt.Fprintf(os.Stderr, "carbonsched: unknown region %q\n", code)
			os.Exit(2)
		}
		regs = append(regs, r)
		codes = append(codes, code)
	}
	horizon := *days * 24
	set, err := simgrid.GenerateCached(ctx, regs, simgrid.Config{Seed: *seed, Hours: horizon}, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonsched:", err)
		os.Exit(1)
	}

	arrivalSpan := horizon - 10*24
	if arrivalSpan < 1 {
		fmt.Fprintln(os.Stderr, "carbonsched: horizon too short")
		os.Exit(2)
	}
	stream, err := sched.GenerateJobs(sched.WorkloadSpec{
		Jobs:              *jobs,
		ArrivalSpan:       arrivalSpan,
		SlackHours:        *slack,
		InterruptibleFrac: *interruptible,
		MigratableFrac:    *migratable,
		Origins:           codes,
		Seed:              *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonsched:", err)
		os.Exit(1)
	}

	var clusters []sched.Cluster
	for _, code := range codes {
		clusters = append(clusters, sched.Cluster{Region: code, Slots: *slots})
	}

	policies := []sched.Policy{
		sched.FIFO{},
		sched.CarbonGate{Percentile: 35, Window: 168},
		sched.ForecastGate{Percentile: 35},
		sched.GreenestFirst{},
		sched.SpatioTemporal{Percentile: 35, Window: 168},
	}

	fmt.Printf("%d jobs, %d regions x %d slots, %d-day horizon, slack %dh\n\n",
		*jobs, len(codes), *slots, *days, *slack)
	fmt.Printf("%-16s %14s %10s %8s %8s %10s\n",
		"policy", "emissions_kg", "vs_fifo", "missed", "wait_h", "util")
	// Each policy simulates the same job stream independently; fan them
	// across the worker pool and print in the fixed policy order.
	results, err := engine.Map(ctx, *workers, len(policies), func(_ context.Context, i int) (sched.Result, error) {
		return sched.Run(set, clusters, stream, policies[i], horizon)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonsched:", err)
		os.Exit(1)
	}
	fifoEmissions := results[0].TotalEmissions
	for _, res := range results {
		saving := 0.0
		if fifoEmissions > 0 {
			saving = 100 * (fifoEmissions - res.TotalEmissions) / fifoEmissions
		}
		fmt.Printf("%-16s %14.1f %9.1f%% %8d %8.1f %9.1f%%\n",
			res.Policy, res.TotalEmissions/1000, saving, res.Missed,
			res.MeanWaitHours, 100*res.Utilization())
	}
}
