package main

import (
	"testing"
	"time"
)

// TestLatencySummaryNearestRank pins the percentile-reporting fix: the
// reported tail must be an observed latency, and for small samples the
// p99 must be the slowest request rather than an interpolation below
// it.
func TestLatencySummaryNearestRank(t *testing.T) {
	lats := []float64{2, 1, 3, 1, 2, 1, 2, 1, 1, 120} // 10 requests, one outlier
	p50, p95, p99, max := latencySummary(lats)
	if p50 != 1 {
		t.Errorf("p50 = %v, want 1", p50)
	}
	if p95 != 120 || p99 != 120 || max != 120 {
		t.Errorf("tail = p95 %v p99 %v max %v, want the 120ms outlier for all", p95, p99, max)
	}

	// 200 identical-but-one samples: p99 now sits below the outlier.
	many := make([]float64, 200)
	for i := range many {
		many[i] = 5
	}
	many[0] = 500
	_, _, p99, max = latencySummary(many)
	if p99 != 5 || max != 500 {
		t.Errorf("large-sample tail = p99 %v max %v, want 5 and 500", p99, max)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"steady", "bursty", "diurnal", "migratable-heavy"} {
		p, err := profileByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.name != name {
			t.Fatalf("profile %q reports name %q", name, p.name)
		}
	}
	if _, err := profileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}

	bursty, _ := profileByName("bursty")
	if d := bursty.delay(10, 100); d == 0 {
		t.Error("bursty profile never pauses")
	}
	if d := bursty.delay(1, 100); d != 0 {
		t.Error("bursty profile pauses mid-burst")
	}
	diurnal, _ := profileByName("diurnal")
	var total time.Duration
	for c := 0; c < 100; c++ {
		d := diurnal.delay(c, 100)
		if d < 0 {
			t.Fatalf("negative delay at chunk %d", c)
		}
		total += d
	}
	if total == 0 {
		t.Error("diurnal profile adds no pacing")
	}
	heavy, _ := profileByName("migratable-heavy")
	if heavy.migratable < 0.9 || heavy.interruptible < 0.8 || heavy.slackScale <= 1 {
		t.Errorf("migratable-heavy mix too lean: %+v", heavy)
	}
}
