// Command loadgen benchmarks a running schedd instance: it replays a
// deterministic, workload-derived job stream against the service at a
// configurable rate with concurrent submitters, then reports achieved
// throughput, submit-latency percentiles (nearest-rank, so small
// samples never under-report the tail), and the carbon outcome of the
// server's policy against an offline FIFO baseline over the exact same
// jobs and trace.
//
// Usage:
//
//	schedd -addr :9090 -policy carbon-gate &      # the system under test
//	loadgen -url http://localhost:9090 -jobs 5000 -submitters 8
//	loadgen -jobs 50000 -batch 100 -rate 0        # full throttle, batched
//	loadgen -jobs 50000 -batch 100 -binary        # CRC-framed binary batches
//	loadgen -jobs 20000 -profile bursty           # arrival bursts
//	loadgen -jobs 10000 -report-every 2s -scrape  # progress + /metrics check
//
// -report-every prints a progress line to stderr at the given interval
// while submitting. -scrape fetches the server's /metrics after the
// run, asserts the exposition parses and that its scheduling counters
// agree with both this run's acknowledgements and /v1/stats, and
// prints machine-readable scrape_*= lines — the CI end-to-end smoke
// runs on it.
//
// The -profile flag selects a scenario shape: steady (the default
// uniform stream), bursty (traffic arrives in dense bursts separated
// by idle gaps), diurnal (the dispatch rate swings sinusoidally, a
// day-night cycle compressed onto the run), migratable-heavy (a
// flexibility-rich mix — mostly migratable, interruptible, generously
// slacked jobs — the best case for spatial policies), and multitenant
// (a Zipf-shared tenant mix matching examples/tenants/multitenant.json
// plus one deliberately abusive tenant, driven against a schedd
// started with -tenants; its 429 rejections and the other tenants'
// clean per-tenant counters are printed as tenant_*= lines). Profiles
// adjust only defaults and pacing; explicitly-set mix flags always
// win.
//
// The stream is seeded via internal/rng and jobs carry explicit ids
// (their stream index plus -id-offset), so two loadgen runs with the
// same flags submit identical jobs and the offline baseline
// reconstructs exactly what the server admitted.
//
// Against a replicated deployment, -endpoints takes the comma-
// separated base URLs of every replica and drives the failover client:
// writes sent to a follower are 421-redirected to its primary, dead
// endpoints are skipped, and a promotion mid-run is survived without
// losing the stream — pair sequential runs with -id-offset so their id
// ranges never collide.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	neturl "net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"time"

	"carbonshift/internal/httpx"
	"carbonshift/internal/metrics"
	"carbonshift/internal/regions"
	"carbonshift/internal/rng"
	"carbonshift/internal/sched"
	"carbonshift/internal/schedd"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/stats"
	"carbonshift/internal/tracing"
	"carbonshift/internal/workload"
)

// submission records one acknowledged request.
type submission struct {
	ids     []int
	arrival int
}

// maxRetryAfterPause caps how long a submitter sleeps on a server
// Retry-After hint. Quota windows are real fleet hours; honoring one
// literally would park the benchmark, so the hint is respected in
// direction but bounded in magnitude.
const maxRetryAfterPause = 2 * time.Second

func main() {
	var (
		url           = flag.String("url", "http://localhost:9090", "schedd base URL")
		endpoints     = flag.String("endpoints", "", "comma-separated schedd base URLs; enables the failover client (dead endpoints are skipped, follower 421s redirect to the primary hint). Overrides -url")
		idOffset      = flag.Int("id-offset", 0, "offset added to every generated job id, so sequential runs against one server never collide")
		jobs          = flag.Int("jobs", 1000, "total jobs to submit")
		rate          = flag.Float64("rate", 0, "target submission rate in jobs/sec (0 = unlimited)")
		submitters    = flag.Int("submitters", 8, "concurrent submitter goroutines")
		batch         = flag.Int("batch", 1, "jobs per submission request")
		binaryProto   = flag.Bool("binary", false, "submit over the binary batch protocol (POST /v1/jobs/batch, CRC-framed) instead of JSON")
		seed          = flag.Uint64("seed", 1, "workload stream seed")
		dist          = flag.String("dist", "azure", "job-length distribution: equal, azure, google")
		slack         = flag.Int("slack", 48, "per-job slack in hours")
		interruptible = flag.Float64("interruptible", 0.8, "fraction of interruptible jobs")
		migratable    = flag.Float64("migratable", 0.6, "fraction of migratable jobs")
		maxLen        = flag.Int("max-length", 48, "cap on job length in hours")
		wait          = flag.Duration("wait", 0, "after submitting, poll until all jobs resolve (0 = don't wait)")
		baseline      = flag.Bool("baseline", true, "compute the offline FIFO baseline for the submitted jobs")
		profileName   = flag.String("profile", "steady", "scenario profile: "+profileNames())
		reportEvery   = flag.Duration("report-every", 0, "print a progress line to stderr at this interval while submitting (0 = off)")
		scrape        = flag.Bool("scrape", false, "after the run, scrape the server's /metrics and assert it parses and agrees with the run and /v1/stats; exits non-zero on mismatch")
		slowest       = flag.Int("slowest", 0, "mint a sampled traceparent per request, then fetch the server's /debug/traces and print the N slowest submit traces as span waterfalls (0 = off)")
	)
	flag.Parse()

	prof, err := profileByName(*profileName)
	if err != nil {
		fatal(err)
	}
	// Profile mix presets are defaults: a flag the user set explicitly
	// always wins over the profile.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if prof.interruptible >= 0 && !explicit["interruptible"] {
		*interruptible = prof.interruptible
	}
	if prof.migratable >= 0 && !explicit["migratable"] {
		*migratable = prof.migratable
	}
	if prof.slackScale > 0 && !explicit["slack"] {
		*slack = int(float64(*slack) * prof.slackScale)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var client *schedd.Client
	var err2 error
	if *endpoints != "" {
		var urls []string
		for _, u := range strings.Split(*endpoints, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		client, err2 = schedd.NewFailoverClient(urls, nil)
	} else {
		client, err2 = schedd.NewClient(*url, nil)
	}
	if err2 != nil {
		fatal(err2)
	}
	info, err := client.Stats(ctx)
	if err != nil {
		fatal(fmt.Errorf("fetching server config: %w", err))
	}
	if len(info.Clusters) == 0 {
		fatal(fmt.Errorf("server reports no clusters"))
	}
	origins := make([]string, len(info.Clusters))
	for i, c := range info.Clusters {
		origins[i] = c.Region
	}
	fmt.Fprintf(os.Stderr, "loadgen: target %s policy=%s regions=%v horizon=%dh profile=%s\n",
		client.Endpoint(), info.Policy, origins, info.Horizon, prof.name)

	distribution, err := pickDist(*dist)
	if err != nil {
		fatal(err)
	}

	// The deterministic job stream: lengths from the chosen trace-derived
	// distribution, origins cycled through the server's clusters, ids
	// fixed to the stream index.
	src := rng.New(*seed)
	requests := make([]schedd.JobRequest, *jobs)
	for i := range requests {
		length := distribution.Sample(src)
		if length > *maxLen {
			length = *maxLen
		}
		id := i + *idOffset
		requests[i] = schedd.JobRequest{
			ID:            &id,
			Origin:        origins[src.Intn(len(origins))],
			LengthHours:   length,
			SlackHours:    *slack,
			Interruptible: src.Float64() < *interruptible,
			Migratable:    src.Float64() < *migratable,
		}
	}
	// Tenant identity is assigned per chunk, not per job: a batch is
	// admitted atomically, so a mixed-tenant chunk would let one abusive
	// tenant's 429 reject innocent tenants' jobs riding in the same
	// request — exactly the cross-tenant interference the profile exists
	// to disprove.
	if prof.tenantFor != nil {
		for lo, chunk := 0, 0; lo < len(requests); lo, chunk = lo+*batch, chunk+1 {
			hi := lo + *batch
			if hi > len(requests) {
				hi = len(requests)
			}
			name := prof.tenantFor(chunk)
			for i := lo; i < hi; i++ {
				requests[i].Tenant = name
			}
		}
	}

	// With -slowest, every request carries a sampled traceparent: the
	// server records each submit into its trace ring, and the post-run
	// fetch can rank them. The local ring is irrelevant — the tracer
	// exists to mint propagable trace context.
	var tracer *tracing.Tracer
	if *slowest > 0 {
		tracer = tracing.New(tracing.Config{SampleEvery: 1, RingSize: 1})
	}

	// Fan the stream across concurrent submitters. Each request carries
	// up to -batch jobs; a shared ticker paces the global rate.
	var (
		reqCh        = make(chan []schedd.JobRequest, *submitters)
		mu           sync.Mutex
		subs         []submission
		lats         []float64
		errorsN      int
		partials     int                // gateway 207s: batches only partially admitted
		backoffHints int                // rejections that carried a Retry-After hint
		acked        = map[string]int{} // per-tenant acknowledged jobs
		rejected     = map[string]int{} // per-tenant jobs rejected with 429
		wg           sync.WaitGroup
	)
	var throttle <-chan time.Time
	if *rate > 0 {
		interval := time.Duration(float64(time.Second) * float64(*batch) / *rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		throttle = tick.C
	}

	start := time.Now()
	// The periodic progress line: without it a long run is silent until
	// the final report, which reads as a hang. Counters are sampled
	// under the same mutex the submitters update them under.
	reportDone := make(chan struct{})
	if *reportEvery > 0 {
		go func() {
			tick := time.NewTicker(*reportEvery)
			defer tick.Stop()
			for {
				select {
				case <-reportDone:
					return
				case <-tick.C:
				}
				mu.Lock()
				n, failed := 0, errorsN
				for _, s := range subs {
					n += len(s.ids)
				}
				mu.Unlock()
				elapsed := time.Since(start).Seconds()
				fmt.Fprintf(os.Stderr, "loadgen: progress %d/%d jobs submitted, %d failed requests, %.0f jobs/s, %.1fs elapsed\n",
					n, *jobs, failed, float64(n)/elapsed, elapsed)
			}
		}()
	}
	// The wire protocol is a strategy swap: Submit and SubmitBatch share
	// a signature and admission semantics, differing only in codec.
	submit := client.Submit
	if *binaryProto {
		submit = client.SubmitBatch
	}
	for w := 0; w < *submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range reqCh {
				if throttle != nil {
					select {
					case <-throttle:
					case <-ctx.Done():
						return
					}
				}
				t0 := time.Now()
				cctx := ctx
				var sp *tracing.Span
				if tracer != nil {
					cctx, sp = tracer.StartRoot(ctx, "loadgen.submit")
				}
				ack, err := submit(cctx, chunk...)
				sp.End()
				elapsed := time.Since(t0)
				backoff := 0
				var pe *schedd.PartialError
				mu.Lock()
				switch {
				case err == nil:
					subs = append(subs, submission{ids: ack.IDs, arrival: ack.ArrivalHour})
					lats = append(lats, elapsed.Seconds()*1000)
					acked[chunk[0].Tenant] += len(ack.IDs)
				case errors.As(err, &pe):
					// A gateway split the batch and only part of it was
					// admitted (207): count exactly the acked ids — never
					// the whole chunk — so a partial outcome can neither
					// lose nor double-count a job.
					partials++
					ids := pe.AckedIDs()
					subs = append(subs, submission{ids: ids, arrival: pe.Resp.ArrivalHour})
					lats = append(lats, elapsed.Seconds()*1000)
					acked[chunk[0].Tenant] += len(ids)
					backoff = pe.MaxRetryAfter()
				case httpx.StatusCodeOf(err) == http.StatusTooManyRequests && prof.tenantFor != nil:
					// Per-tenant quota/rate rejection: for the multitenant
					// profile this is expected signal (the abusive tenant is
					// SUPPOSED to be throttled), tallied per tenant instead of
					// counting as a failed request.
					rejected[chunk[0].Tenant] += len(chunk)
					backoff = httpx.RetryAfterOf(err)
				default:
					errorsN++
					backoff = httpx.RetryAfterOf(err)
				}
				if backoff > 0 {
					backoffHints++
				}
				mu.Unlock()
				if backoff > 0 {
					// Honor the server's Retry-After hint, capped so a
					// quota window measured in real hours cannot stall
					// the benchmark.
					d := time.Duration(backoff) * time.Second
					if d > maxRetryAfterPause {
						d = maxRetryAfterPause
					}
					select {
					case <-time.After(d):
					case <-ctx.Done():
					}
				}
			}
		}()
	}
	totalChunks := (len(requests) + *batch - 1) / *batch
	for lo, chunk := 0, 0; lo < len(requests); lo, chunk = lo+*batch, chunk+1 {
		hi := lo + *batch
		if hi > len(requests) {
			hi = len(requests)
		}
		if prof.delay != nil {
			if d := prof.delay(chunk, totalChunks); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
		}
		select {
		case reqCh <- requests[lo:hi]:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
	}
	close(reqCh)
	wg.Wait()
	close(reportDone)
	wall := time.Since(start)

	submitted := 0
	for _, s := range subs {
		submitted += len(s.ids)
	}
	fmt.Printf("submitted        %d/%d jobs in %.2fs (%d failed requests)\n",
		submitted, *jobs, wall.Seconds(), errorsN)
	if submitted == 0 {
		fatal(fmt.Errorf("no jobs admitted"))
	}
	perSec := float64(submitted) / wall.Seconds()
	fmt.Printf("throughput       %.0f jobs/s (%.0f jobs/min)\n", perSec, perSec*60)
	// The bench-comparable line: the same jobs/s figure the
	// BenchmarkScheddSubmit* pair reports, in a stable machine-readable
	// form that the CI end-to-end smoke greps and archives.
	fmt.Printf("bench_jobs_per_sec=%d\n", int(perSec))
	fmt.Printf("retry_after_hints=%d\n", backoffHints)
	fmt.Printf("partial_batches=%d\n", partials)
	p50, p95, p99, max := latencySummary(lats)
	fmt.Printf("submit latency   p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms (per request, batch=%d)\n",
		p50, p95, p99, max, *batch)

	if *wait > 0 {
		deadline := time.Now().Add(*wait)
		for {
			st, err := client.Stats(ctx)
			if err != nil {
				fatal(err)
			}
			if st.Unresolved == 0 || time.Now().After(deadline) || ctx.Err() != nil {
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
	}

	final, err := client.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("server           policy=%s hour=%d completed=%d missed=%d queued=%d emissions=%.1fkg util=%.1f%%\n",
		final.Policy, final.Hour, final.Completed, final.Missed, final.QueueDepth,
		final.TotalEmissionsG/1000, 100*final.Utilization)

	if prof.tenantFor != nil {
		// Per-tenant outcome, client-side counters first, then the
		// server's own per-tenant stats — the machine-readable lines the
		// CI multitenant leg asserts on (abusive tenant rejected, everyone
		// else clean).
		names := map[string]bool{}
		for n := range acked {
			names[n] = true
		}
		for n := range rejected {
			names[n] = true
		}
		sorted := make([]string, 0, len(names))
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, n := range sorted {
			fmt.Printf("tenant_acked_%s=%d\n", n, acked[n])
			fmt.Printf("tenant_rejected429_%s=%d\n", n, rejected[n])
		}
		for _, e := range final.Tenants {
			fmt.Printf("tenant_server_%s_submitted=%d missed=%d class=%s\n",
				e.Name, e.Submitted, e.Missed, e.Class)
		}
	}

	if *scrape {
		if err := scrapeAndAssert(ctx, client, submitted, final); err != nil {
			fatal(fmt.Errorf("scrape: %w", err))
		}
	}

	if *slowest > 0 {
		route := "POST /v1/jobs"
		if *binaryProto {
			route = "POST /v1/jobs/batch"
		}
		if err := printSlowest(ctx, client, *slowest, route); err != nil {
			fatal(fmt.Errorf("slowest: %w", err))
		}
	}

	if !*baseline {
		return
	}
	// Offline FIFO baseline: re-simulate the exact jobs the server
	// admitted — same trace (reconstructed from the server's seed and
	// clusters), same arrival hours — under the carbon-agnostic policy.
	fifoKg, err := fifoBaseline(ctx, info, requests, subs, *idOffset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: baseline unavailable: %v\n", err)
		return
	}
	if final.Unresolved > 0 {
		// The server's emissions only cover work executed so far; a
		// savings percentage against the run-to-completion baseline
		// would overstate the policy. Report the baseline alone.
		fmt.Printf("fifo baseline    %.1fkg (run to completion); server still has %d unresolved jobs — rerun with a longer -wait for a comparable saving\n",
			fifoKg, final.Unresolved)
		return
	}
	saving := 0.0
	if fifoKg > 0 {
		saving = 100 * (fifoKg - final.TotalEmissionsG/1000) / fifoKg
	}
	fmt.Printf("fifo baseline    %.1fkg; %s saves %.1f%% (positive = greener than FIFO)\n",
		fifoKg, final.Policy, saving)
}

// fifoBaseline rebuilds the admitted jobs from the acknowledgements
// (each id is idOffset plus the index into the generated stream) and
// runs the batch simulator under FIFO on the server's own trace
// configuration.
func fifoBaseline(ctx context.Context, info schedd.StatsResponse,
	requests []schedd.JobRequest, subs []submission, idOffset int) (float64, error) {
	var regs []regions.Region
	var clusters []sched.Cluster
	for _, c := range info.Clusters {
		r, ok := regions.ByCode(c.Region)
		if !ok {
			return 0, fmt.Errorf("server region %q not in catalog", c.Region)
		}
		regs = append(regs, r)
		clusters = append(clusters, sched.Cluster{Region: c.Region, Slots: c.Slots})
	}
	set, err := simgrid.GenerateCached(ctx, regs, simgrid.Config{Seed: info.Seed, Hours: info.Horizon}, 0)
	if err != nil {
		return 0, err
	}
	var jobs []sched.Job
	for _, s := range subs {
		for _, id := range s.ids {
			if id < idOffset || id-idOffset >= len(requests) {
				return 0, fmt.Errorf("server acknowledged unknown job id %d", id)
			}
			r := requests[id-idOffset]
			jobs = append(jobs, sched.Job{
				ID:            id,
				Origin:        r.Origin,
				Arrival:       s.arrival,
				Length:        r.LengthHours,
				Slack:         r.SlackHours,
				Interruptible: r.Interruptible,
				Migratable:    r.Migratable,
			})
		}
	}
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Arrival != jobs[b].Arrival {
			return jobs[a].Arrival < jobs[b].Arrival
		}
		return jobs[a].ID < jobs[b].ID
	})
	res, err := sched.Run(set, clusters, jobs, sched.FIFO{}, info.Horizon)
	if err != nil {
		return 0, err
	}
	return res.TotalEmissions / 1000, nil
}

// scrapeAndAssert fetches the target's /metrics, checks the exposition
// parses, and asserts the scheduling counters agree with both this
// run's acknowledgements and the /v1/stats snapshot taken just before
// — the live half of the parity the schedd unit tests pin. Key values
// are echoed in machine-readable scrape_*= lines for the CI e2e legs.
func scrapeAndAssert(ctx context.Context, client *schedd.Client, submitted int, final schedd.StatsResponse) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, client.Endpoint()+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics returned %s", resp.Status)
	}
	sc, err := metrics.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("exposition does not parse: %w", err)
	}

	total, ok := sc.Samples["schedd_jobs_submitted_total"]
	if !ok {
		return fmt.Errorf("schedd_jobs_submitted_total missing from /metrics")
	}
	// The metric counts every admission the server ever saw (earlier
	// runs and recovered jobs included), so it bounds this run's count
	// from above and must equal the adjacent stats snapshot exactly:
	// both read the same fleet counter and no submitter is running.
	if int(total) < submitted {
		return fmt.Errorf("schedd_jobs_submitted_total=%d < %d jobs this run acknowledged", int(total), submitted)
	}
	if int(total) != final.Submitted {
		return fmt.Errorf("schedd_jobs_submitted_total=%d but /v1/stats submitted=%d", int(total), final.Submitted)
	}
	lag, ok := sc.Samples["schedd_replication_lag_hours"]
	if !ok {
		return fmt.Errorf("schedd_replication_lag_hours missing from /metrics")
	}
	// On a multi-tenant server, the per-tenant submission gauges must be
	// present and sum to the stats block's per-tenant total — unlisted
	// tenants aggregate under tenant="other", so the sums still match.
	if len(final.Tenants) > 0 {
		statsSum := 0
		for _, e := range final.Tenants {
			statsSum += e.Submitted
		}
		metricSum, series := 0.0, 0
		for k, v := range sc.Samples {
			if strings.HasPrefix(k, "schedd_tenant_jobs_submitted{") {
				metricSum += v
				series++
			}
		}
		if series == 0 {
			return fmt.Errorf("schedd_tenant_jobs_submitted missing from /metrics despite %d tenants in /v1/stats", len(final.Tenants))
		}
		if int(metricSum) != statsSum {
			return fmt.Errorf("schedd_tenant_jobs_submitted sums to %d but /v1/stats tenants sum to %d", int(metricSum), statsSum)
		}
		fmt.Printf("scrape_tenant_submitted_total=%d\n", int(metricSum))
		fmt.Printf("scrape_tenant_series=%d\n", series)
	}
	fmt.Printf("scrape_submitted_total=%d\n", int(total))
	fmt.Printf("scrape_replication_lag_hours=%d\n", int(lag))
	if v, ok := sc.Samples[`schedd_backpressure_total{reason="queue_full"}`]; ok {
		fmt.Printf("scrape_backpressure_queue_full=%d\n", int(v))
	}
	if c := sc.Sum("wal_fsync_seconds_count"); c > 0 {
		fmt.Printf("scrape_wal_fsyncs=%d\n", int(c))
	}
	fmt.Printf("scrape_ok=1 (%d series)\n", len(sc.Samples))
	return nil
}

// printSlowest fetches the server's trace ring, ranks this run's
// submit traces by duration, and prints the n slowest as span
// waterfalls — the "p99 is high, show me why" tool. The route filter
// keeps only this run's submit roots (JSON or binary), so stats polls
// and scrapes never rank. Ends with a machine-readable
// trace_slowest_ms= line the CI e2e leg greps.
func printSlowest(ctx context.Context, client *schedd.Client, n int, route string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		client.Endpoint()+"/debug/traces?route="+neturl.QueryEscape(route)+"&limit=1000000", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/traces returned %s", resp.Status)
	}
	var dump tracing.Dump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return fmt.Errorf("trace dump does not parse: %w", err)
	}
	if len(dump.Traces) == 0 {
		return fmt.Errorf("server holds no submit traces (was it started with tracing disabled?)")
	}
	sort.Slice(dump.Traces, func(a, b int) bool {
		return dump.Traces[a].DurationMS > dump.Traces[b].DurationMS
	})
	if n > len(dump.Traces) {
		n = len(dump.Traces)
	}
	fmt.Printf("slowest %d of %d sampled submit traces\n", n, len(dump.Traces))
	for _, td := range dump.Traces[:n] {
		fmt.Printf("trace %s  %s  %.2fms\n", td.TraceID, td.Root, td.DurationMS)
		for _, sp := range td.Spans {
			var attrs strings.Builder
			for _, a := range sp.Attrs {
				fmt.Fprintf(&attrs, " %s=%s", a.Key, a.Value)
			}
			fmt.Printf("  +%8.2fms %9.2fms  %s%s\n",
				float64(sp.Start.Sub(td.Start))/float64(time.Millisecond),
				sp.DurationMS, sp.Name, attrs.String())
		}
		if td.DroppedSpans > 0 {
			fmt.Printf("  (%d spans dropped)\n", td.DroppedSpans)
		}
	}
	fmt.Printf("trace_slowest_ms=%.2f\n", dump.Traces[0].DurationMS)
	return nil
}

// latencySummary reports the nearest-rank p50/p95/p99 and the max of a
// millisecond latency sample. Nearest-rank (ceil(p/100·n), 1-based)
// always returns an observed request's latency; the previous
// interpolating estimator under-reported the p99 whenever fewer than
// ~100 requests were sampled. Extracted so the definition is unit
// testable.
func latencySummary(lats []float64) (p50, p95, p99, max float64) {
	sort.Float64s(lats)
	return stats.NearestRankSorted(lats, 50), stats.NearestRankSorted(lats, 95),
		stats.NearestRankSorted(lats, 99), lats[len(lats)-1]
}

// scenarioProfile shapes the generated scenario: mix presets (negative
// means "leave the flag default alone") and a deterministic pacing
// delay injected before dispatching each chunk of requests.
type scenarioProfile struct {
	name          string
	interruptible float64
	migratable    float64
	slackScale    float64
	delay         func(chunk, totalChunks int) time.Duration
	// tenantFor, when set, names the tenant for every job in the given
	// chunk (chunks are single-tenant because batches admit atomically).
	// Called once per chunk in dispatch order, so stateful closures stay
	// deterministic.
	tenantFor func(chunk int) string
}

func profileByName(name string) (scenarioProfile, error) {
	switch name {
	case "steady":
		// The uniform stream: no pacing structure, flag-default mix.
		return scenarioProfile{name: name, interruptible: -1, migratable: -1}, nil
	case "bursty":
		// Dense bursts separated by idle gaps: every 10th chunk pauses,
		// so queue depth saws between backlog and drain — the admission
		// and backpressure stress shape.
		return scenarioProfile{
			name: name, interruptible: -1, migratable: -1,
			delay: func(chunk, _ int) time.Duration {
				if chunk > 0 && chunk%10 == 0 {
					return 250 * time.Millisecond
				}
				return 0
			},
		}, nil
	case "diurnal":
		// A day-night cycle compressed onto the run: the inter-chunk
		// delay swings sinusoidally over four full periods, peaking at
		// 40ms per chunk in the "night" troughs.
		return scenarioProfile{
			name: name, interruptible: -1, migratable: -1,
			delay: func(chunk, total int) time.Duration {
				if total < 2 {
					return 0
				}
				phase := 2 * math.Pi * 4 * float64(chunk) / float64(total)
				return time.Duration(20 * (1 + math.Sin(phase)) * float64(time.Millisecond))
			},
		}, nil
	case "migratable-heavy":
		// The flexibility-rich mix the paper's spatial shifting wants:
		// almost everything can move and pause, with doubled slack.
		return scenarioProfile{name: name, interruptible: 0.9, migratable: 0.95, slackScale: 2}, nil
	case "multitenant":
		// Zipf-shaped tenant shares (8:4:2:1:1) over the registry in
		// examples/tenants/multitenant.json, plus "noisy" — a tenant the
		// registry does NOT declare, so it lands on the catch-all's tight
		// quota and rate limits. Run against a schedd started with
		// -tenants: noisy's submissions draw 429s (tenant_rejected429_*
		// lines prove it) while the declared tenants ride at baseline —
		// the load-level demonstration of per-tenant isolation.
		mix := []struct {
			name  string
			share int
		}{{"web", 8}, {"pipeline", 4}, {"research", 2}, {"spot", 1}, {"noisy", 1}}
		total := 0
		for _, m := range mix {
			total += m.share
		}
		tenantSrc := rng.New(97)
		return scenarioProfile{
			name: name, interruptible: -1, migratable: -1,
			tenantFor: func(int) string {
				n := tenantSrc.Intn(total)
				for _, m := range mix {
					if n -= m.share; n < 0 {
						return m.name
					}
				}
				return mix[0].name
			},
		}, nil
	default:
		return scenarioProfile{}, fmt.Errorf("unknown profile %q (have %s)", name, profileNames())
	}
}

func profileNames() string { return "steady, bursty, diurnal, migratable-heavy, multitenant" }

func pickDist(name string) (workload.Distribution, error) {
	switch name {
	case "equal":
		return workload.DistEqual, nil
	case "azure":
		return workload.DistAzure, nil
	case "google":
		return workload.DistGoogle, nil
	default:
		return workload.Distribution{}, fmt.Errorf("unknown distribution %q (have equal, azure, google)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
