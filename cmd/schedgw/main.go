// Command schedgw is the stateless routing gateway in front of a
// partitioned schedd fleet. Each -partition flag names one partition's
// replica set (primary and standbys, comma-separated); the gateway
// routes job submissions to the partition owning each job's origin
// region, splits mixed batches, merges /v1/stats and /metrics into
// fleet-wide views, and proxies job lookups by id range.
//
// Usage:
//
//	schedgw -addr :9080 \
//	  -partition http://p0-primary:9090,http://p0-standby:9091 \
//	  -partition http://p1-primary:9092,http://p1-standby:9093
//	curl -X POST localhost:9080/v1/jobs -d '{"origin":"DE","length_hours":6,"slack_hours":24}'
//	curl localhost:9080/v1/stats
//	curl localhost:9080/metrics
//
// The gateway holds no scheduling state: topology (which partition
// owns which region, each partition's job-id base) is learned from the
// partitions' own /v1/stats echoes, so any number of schedgw replicas
// can front the same fleet. Each partition is reached through a
// failover client, so a partition surviving a primary kill via its hot
// standby needs no gateway reconfiguration.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"carbonshift/internal/gateway"
	"carbonshift/internal/serve"
)

// partitionFlags collects repeated -partition values.
type partitionFlags [][]string

func (p *partitionFlags) String() string { return fmt.Sprint([][]string(*p)) }

func (p *partitionFlags) Set(v string) error {
	var urls []string
	for _, u := range strings.Split(v, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("empty partition replica list")
	}
	*p = append(*p, urls)
	return nil
}

func main() {
	var parts partitionFlags
	addr := flag.String("addr", ":9080", "listen address")
	flag.Var(&parts, "partition", "one partition's replica base URLs, comma-separated (primary first); repeat per partition")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout talking to partitions")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	gw, err := gateway.New(gateway.Config{
		Partitions: parts,
		HTTPClient: &http.Client{Timeout: *timeout},
	})
	if err != nil {
		log.Error("bad configuration", "err", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("gateway serving", "addr", *addr, "partitions", len(parts))
	server := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := serve.ListenAndServe(ctx, server, serve.DefaultGrace); err != nil {
		log.Error("server failed", "err", err)
		os.Exit(1)
	}
	log.Info("gateway stopped")
}
