// Command schedd runs the online carbon-aware scheduling service: jobs
// submitted over HTTP are placed by the selected policy against the
// replayed grid, with the same engine — and byte-identical decisions —
// as the cmd/carbonsched batch simulation.
//
// Usage:
//
//	schedd -addr :9090 -regions DE,SE,US-CA -policy carbon-gate
//	curl -X POST localhost:9090/v1/jobs -d '{"origin":"DE","length_hours":6,"slack_hours":24,"interruptible":true}'
//	curl localhost:9090/v1/jobs/0
//	curl localhost:9090/v1/stats
//
// On SIGINT/SIGTERM the HTTP server drains in-flight requests, then the
// fleet runs forward until every admitted job is resolved, and the
// final scheduling outcome is printed.
//
// With -data-dir the scheduler is durable: every admission is written
// to an append-only journal (fsync discipline per -fsync) and the full
// fleet state is snapshotted every -snapshot-every replay hours; after
// a crash or kill -9, restarting with the same -data-dir recovers all
// acknowledged work and resumes scheduling:
//
//	schedd -data-dir /var/lib/schedd -fsync always -snapshot-every 24
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"carbonshift/internal/regions"
	"carbonshift/internal/sched"
	"carbonshift/internal/schedd"
	"carbonshift/internal/serve"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/wal"
)

func main() {
	var (
		addr       = flag.String("addr", ":9090", "listen address")
		regionList = flag.String("regions", "DE,SE,US-CA", "comma-separated cluster regions")
		slots      = flag.Int("slots", 30, "slots per regional cluster")
		days       = flag.Int("days", 60, "replay horizon in days")
		policyName = flag.String("policy", "carbon-gate",
			"scheduling policy: "+strings.Join(schedd.PolicyNames(), ", "))
		percentile = flag.Float64("percentile", 35, "gate percentile for the gated policies")
		window     = flag.Int("window", 168, "lookback window in hours for carbon-gate")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		shards     = flag.Int("shards", 0, "fleet region shards stepped in parallel (0 = min(CPUs, regions)); affects throughput only, never placements")
		speedup    = flag.Float64("speedup", 3600, "trace seconds per wall second (3600 = 1h/s)")
		maxJobs    = flag.Int("max-jobs", schedd.DefaultMaxJobs, "bound on total jobs retained in memory")
		maxQueue   = flag.Int("max-queue", schedd.DefaultMaxQueue, "bound on outstanding (unresolved) jobs")
		dataDir    = flag.String("data-dir", "", "durability directory: journal admissions, snapshot fleet state, and recover on start (empty = in-memory only)")
		snapEvery  = flag.Int("snapshot-every", 24, "snapshot the fleet every N replay hours (0 = only at boot)")
		fsyncMode  = flag.String("fsync", "batch", "journal fsync discipline: always (every ack durable), batch (group flush, bounded loss window), none")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	policy, err := schedd.PolicyByName(*policyName, *percentile, *window)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(2)
	}

	var regs []regions.Region
	var clusters []sched.Cluster
	for _, code := range strings.Split(*regionList, ",") {
		code = strings.TrimSpace(code)
		r, ok := regions.ByCode(code)
		if !ok {
			fmt.Fprintf(os.Stderr, "schedd: unknown region %q\n", code)
			os.Exit(2)
		}
		regs = append(regs, r)
		clusters = append(clusters, sched.Cluster{Region: code, Slots: *slots})
	}
	horizon := *days * 24

	fmt.Fprintf(os.Stderr, "schedd: generating %d-region traces...\n", len(regs))
	set, err := simgrid.GenerateCached(ctx, regs, simgrid.Config{Seed: *seed, Hours: horizon}, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}

	// The replay clock maps wall time since boot to trace hours. After a
	// recovery the fleet is already at some hour H > 0, so the clock
	// resumes from there (baseHours, set once New has recovered) —
	// otherwise a restarted scheduler would freeze until wall time
	// caught back up to H/speedup.
	boot := time.Now()
	var baseHours atomic.Int64
	clock := func() time.Time {
		simElapsed := time.Duration(float64(time.Since(boot)) * *speedup)
		return set.Start().Add(time.Duration(baseHours.Load())*time.Hour + simElapsed)
	}
	sync, err := wal.ParseSyncMode(*fsyncMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(2)
	}
	srv, err := schedd.New(set, clusters, schedd.Config{
		Policy:        policy,
		Horizon:       horizon,
		Shards:        *shards,
		MaxJobs:       *maxJobs,
		MaxQueue:      *maxQueue,
		Seed:          *seed,
		DataDir:       *dataDir,
		SnapshotEvery: *snapEvery,
		Sync:          sync,
	}, schedd.WithClock(clock))
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
	defer srv.Close()
	baseHours.Store(int64(srv.Hour()))
	if *dataDir != "" {
		if rec := srv.Recovery(); rec.Recovered {
			fmt.Fprintf(os.Stderr,
				"schedd: recovered %d jobs at hour %d from %s (snapshot hour %d, %d journal records replayed, torn tail: %v)\n",
				rec.RecoveredJobs, srv.Hour(), *dataDir,
				rec.RecoveredSnapshotHour, rec.ReplayedRecords, rec.TornTail)
		} else {
			fmt.Fprintf(os.Stderr, "schedd: journaling to %s (fsync=%s, snapshot every %dh)\n",
				*dataDir, sync, *snapEvery)
		}
	}

	fmt.Fprintf(os.Stderr, "schedd: %s policy over %d regions x %d slots on %s (replay speedup %.0fx)\n",
		policy.Name(), len(clusters), *slots, *addr, *speedup)
	if *shards != 0 {
		fmt.Fprintf(os.Stderr, "schedd: fleet sharded %d ways\n", *shards)
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// os.Exit skips deferred calls, so every exit path below closes the
	// server explicitly first: Close flushes the journal's final batch
	// — without it an orderly error exit would lose the last -fsync
	// batch window of acknowledged admissions, just like a kill -9.
	if err := serve.ListenAndServe(ctx, server, serve.DefaultGrace); err != nil {
		srv.Close()
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}

	// HTTP is down; run the world forward so every admitted job is
	// accounted for before exit.
	fmt.Fprintln(os.Stderr, "schedd: draining fleet...")
	res, err := srv.Drain()
	if err != nil {
		srv.Close()
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"schedd: drained: %d jobs, %d completed, %d missed, %.1f kg CO2eq, %.1f%% utilization\n",
		len(res.Outcomes), res.Completed, res.Missed,
		res.TotalEmissions/1000, 100*res.Utilization())
}
