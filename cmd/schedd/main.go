// Command schedd runs the online carbon-aware scheduling service: jobs
// submitted over HTTP are placed by the selected policy against the
// replayed grid, with the same engine — and byte-identical decisions —
// as the cmd/carbonsched batch simulation.
//
// Usage:
//
//	schedd -addr :9090 -regions DE,SE,US-CA -policy carbon-gate
//	curl -X POST localhost:9090/v1/jobs -d '{"origin":"DE","length_hours":6,"slack_hours":24,"interruptible":true}'
//	curl localhost:9090/v1/jobs/0
//	curl localhost:9090/v1/stats
//
// On SIGINT/SIGTERM the HTTP server drains in-flight requests, then the
// fleet runs forward until every admitted job is resolved, and the
// final scheduling outcome is printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"carbonshift/internal/regions"
	"carbonshift/internal/sched"
	"carbonshift/internal/schedd"
	"carbonshift/internal/serve"
	"carbonshift/internal/simgrid"
)

func main() {
	var (
		addr       = flag.String("addr", ":9090", "listen address")
		regionList = flag.String("regions", "DE,SE,US-CA", "comma-separated cluster regions")
		slots      = flag.Int("slots", 30, "slots per regional cluster")
		days       = flag.Int("days", 60, "replay horizon in days")
		policyName = flag.String("policy", "carbon-gate",
			"scheduling policy: "+strings.Join(schedd.PolicyNames(), ", "))
		percentile = flag.Float64("percentile", 35, "gate percentile for the gated policies")
		window     = flag.Int("window", 168, "lookback window in hours for carbon-gate")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		shards     = flag.Int("shards", 0, "fleet region shards stepped in parallel (0 = min(CPUs, regions)); affects throughput only, never placements")
		speedup    = flag.Float64("speedup", 3600, "trace seconds per wall second (3600 = 1h/s)")
		maxJobs    = flag.Int("max-jobs", schedd.DefaultMaxJobs, "bound on total jobs retained in memory")
		maxQueue   = flag.Int("max-queue", schedd.DefaultMaxQueue, "bound on outstanding (unresolved) jobs")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	policy, err := schedd.PolicyByName(*policyName, *percentile, *window)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(2)
	}

	var regs []regions.Region
	var clusters []sched.Cluster
	for _, code := range strings.Split(*regionList, ",") {
		code = strings.TrimSpace(code)
		r, ok := regions.ByCode(code)
		if !ok {
			fmt.Fprintf(os.Stderr, "schedd: unknown region %q\n", code)
			os.Exit(2)
		}
		regs = append(regs, r)
		clusters = append(clusters, sched.Cluster{Region: code, Slots: *slots})
	}
	horizon := *days * 24

	fmt.Fprintf(os.Stderr, "schedd: generating %d-region traces...\n", len(regs))
	set, err := simgrid.GenerateCached(ctx, regs, simgrid.Config{Seed: *seed, Hours: horizon}, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}

	boot := time.Now()
	clock := func() time.Time {
		simElapsed := time.Duration(float64(time.Since(boot)) * *speedup)
		return set.Start().Add(simElapsed)
	}
	srv, err := schedd.New(set, clusters, schedd.Config{
		Policy:   policy,
		Horizon:  horizon,
		Shards:   *shards,
		MaxJobs:  *maxJobs,
		MaxQueue: *maxQueue,
		Seed:     *seed,
	}, schedd.WithClock(clock))
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "schedd: %s policy over %d regions x %d slots on %s (replay speedup %.0fx)\n",
		policy.Name(), len(clusters), *slots, *addr, *speedup)
	if *shards != 0 {
		fmt.Fprintf(os.Stderr, "schedd: fleet sharded %d ways\n", *shards)
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := serve.ListenAndServe(ctx, server, serve.DefaultGrace); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}

	// HTTP is down; run the world forward so every admitted job is
	// accounted for before exit.
	fmt.Fprintln(os.Stderr, "schedd: draining fleet...")
	res, err := srv.Drain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"schedd: drained: %d jobs, %d completed, %d missed, %.1f kg CO2eq, %.1f%% utilization\n",
		len(res.Outcomes), res.Completed, res.Missed,
		res.TotalEmissions/1000, 100*res.Utilization())
}
