// Command schedd runs the online carbon-aware scheduling service: jobs
// submitted over HTTP are placed by the selected policy against the
// replayed grid, with the same engine — and byte-identical decisions —
// as the cmd/carbonsched batch simulation.
//
// Usage:
//
//	schedd -addr :9090 -regions DE,SE,US-CA -policy carbon-gate
//	curl -X POST localhost:9090/v1/jobs -d '{"origin":"DE","length_hours":6,"slack_hours":24,"interruptible":true}'
//	curl localhost:9090/v1/jobs/0
//	curl localhost:9090/v1/stats
//	curl localhost:9090/metrics
//
// High-rate submitters can use POST /v1/jobs/batch instead of the JSON
// route: a CRC-framed binary batch (content type
// application/x-carbonshift-batch, encoded by the Go client's
// SubmitBatch or loadgen -binary) admits the whole batch under one
// admission section and one group-commit journal append, with
// placements identical to the JSON path.
//
// GET /metrics serves the full instrumentation surface in Prometheus
// text format — scheduling counters, submit/step latency histograms,
// WAL fsync timings, replication lag — ready to scrape with the config
// in examples/dashboard/; docs/OBSERVABILITY.md documents every
// family.
//
// With -tenants the scheduler is multi-tenant: submissions carry a
// "tenant" field, admission enforces per-tenant hourly quotas and
// token-bucket rates (429 Too Many Requests), and slots are granted by
// weighted-fair queueing over priority classes (interactive, batch,
// scavenger). /v1/stats grows a per-tenant block and /metrics the
// schedd_tenant_* families:
//
//	schedd -tenants examples/tenants/multitenant.json
//	curl -X POST localhost:9090/v1/jobs -d '{"origin":"DE","tenant":"web","length_hours":1,"slack_hours":6}'
//
// On SIGINT/SIGTERM the HTTP server drains in-flight requests, then the
// fleet runs forward until every admitted job is resolved, and the
// final scheduling outcome is printed.
//
// With -data-dir the scheduler is durable: every admission is written
// to an append-only journal (fsync discipline per -fsync) and the full
// fleet state is snapshotted every -snapshot-every replay hours; after
// a crash or kill -9, restarting with the same -data-dir recovers all
// acknowledged work and resumes scheduling:
//
//	schedd -data-dir /var/lib/schedd -fsync always -snapshot-every 24
//
// A durable schedd is also a replication primary: it serves its
// journal over GET /v1/repl/stream. A second schedd started with
// -follow becomes a hot standby — it copies the primary's world
// configuration from /v1/stats, bootstraps from the primary's
// snapshot, applies the journal stream live, serves read-only
// /v1/jobs/{id} and /v1/stats (with an X-Replication-Lag-Hours
// header), and rejects writes with 421 plus the primary's URL. It
// takes over on POST /v1/repl/promote, or automatically once
// -probe-failures consecutive health probes (every -probe-interval)
// of the primary fail:
//
//	schedd -addr :9091 -follow http://primary:9090 \
//	  -data-dir /var/lib/schedd-standby -probe-interval 2s
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"carbonshift/internal/regions"
	"carbonshift/internal/sched"
	"carbonshift/internal/schedd"
	"carbonshift/internal/serve"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/tenant"
	"carbonshift/internal/wal"
)

func main() {
	var (
		addr       = flag.String("addr", ":9090", "listen address")
		regionList = flag.String("regions", "DE,SE,US-CA", "comma-separated cluster regions")
		slots      = flag.Int("slots", 30, "slots per regional cluster")
		days       = flag.Int("days", 60, "replay horizon in days")
		policyName = flag.String("policy", "carbon-gate",
			"scheduling policy: "+strings.Join(schedd.PolicyNames(), ", "))
		percentile  = flag.Float64("percentile", 35, "gate percentile for the gated policies")
		window      = flag.Int("window", 168, "lookback window in hours for carbon-gate")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		shards      = flag.Int("shards", 0, "fleet region shards stepped in parallel (0 = min(CPUs, regions)); affects throughput only, never placements")
		speedup     = flag.Float64("speedup", 3600, "trace seconds per wall second (3600 = 1h/s)")
		maxJobs     = flag.Int("max-jobs", schedd.DefaultMaxJobs, "bound on total jobs retained in memory")
		maxQueue    = flag.Int("max-queue", schedd.DefaultMaxQueue, "bound on outstanding (unresolved) jobs")
		dataDir     = flag.String("data-dir", "", "durability directory: journal admissions, snapshot fleet state, and recover on start (empty = in-memory only)")
		snapEvery   = flag.Int("snapshot-every", 24, "snapshot the fleet every N replay hours (0 = only at boot)")
		fsyncMode   = flag.String("fsync", "batch", "journal fsync discipline: always (every ack durable), batch (group flush, bounded loss window), none")
		follow      = flag.String("follow", "", "run as a hot-standby follower of the primary at this base URL (world config is copied from its /v1/stats)")
		advertise   = flag.String("advertise", "", "this server's own public base URL, echoed in /v1/stats and used by operators wiring failover clients")
		probeEvery  = flag.Duration("probe-interval", 0, "follower: probe the primary's /healthz at this cadence and auto-promote on loss (0 = promote only via POST /v1/repl/promote)")
		probeFails  = flag.Int("probe-failures", 3, "follower: consecutive failed probes before auto-promotion")
		tenantsPath = flag.String("tenants", "", "multi-tenant admission config: a JSON file of tenant specs (see examples/tenants/); empty = single-tenant mode. Followers copy the primary's tenant config instead.")
		partitions  = flag.Int("partitions", 0, "total partition count when this server is one slice of a schedgw-fronted fleet (0 = unpartitioned)")
		partitionID = flag.Int("partition-id", 0, "this server's partition index in [0, -partitions)")
		idBase      = flag.Int("id-base", -1, "start of this partition's auto-assigned job id range (-1 = partition-id * max-jobs). Followers copy the primary's partition identity instead.")
		traceSample = flag.Int("trace-sample", 0, "head-sample 1 in N requests into /debug/traces (0 = default 16, 1 = every request, negative = never)")
		traceSlow   = flag.Duration("trace-slow", 0, "always record requests slower than this, sampled or not (0 = default 250ms)")
		debugAddr   = flag.String("debug-addr", "", "operator debug listener (pprof + /debug/traces); empty = disabled. Bind it to loopback.")
	)
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("service", "schedd")
	slog.SetDefault(log)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	policy, err := schedd.PolicyByName(*policyName, *percentile, *window)
	if err != nil {
		log.Error("bad -policy", "err", err)
		os.Exit(2)
	}
	sync, err := wal.ParseSyncMode(*fsyncMode)
	if err != nil {
		log.Error("bad -fsync", "err", err)
		os.Exit(2)
	}

	// World configuration: a primary's comes from its flags; a follower
	// copies the primary's (seed, horizon, clusters) so the two fleets
	// are provably the same scheduling world.
	var clusters []sched.Cluster
	var tenants *tenant.Config
	horizon := *days * 24
	worldSeed := *seed
	partCount, partID, partBase := *partitions, *partitionID, *idBase
	if partCount > 0 {
		if partID < 0 || partID >= partCount {
			log.Error("-partition-id outside [0, -partitions)", "partition_id", partID, "partitions", partCount)
			os.Exit(2)
		}
		if partBase < 0 {
			partBase = partID * *maxJobs
		}
	} else {
		partBase = 0
	}
	if *follow != "" {
		info, err := fetchPrimaryConfig(ctx, *follow)
		if err != nil {
			log.Error("fetching primary config failed", "err", err)
			os.Exit(1)
		}
		if info.Policy != policy.Name() {
			log.Error("policy mismatch with primary — placements would diverge",
				"primary_policy", info.Policy, "follower_policy", policy.Name())
			os.Exit(2)
		}
		horizon, worldSeed = info.Horizon, info.Seed
		for _, c := range info.Clusters {
			clusters = append(clusters, sched.Cluster{Region: c.Region, Slots: c.Slots})
		}
		// The tenant registry is part of the scheduling world: the fair
		// queue's dequeue order depends on it, so a follower copies the
		// primary's echoed config rather than trusting a local file.
		if *tenantsPath != "" {
			log.Warn("-tenants is ignored on a follower; the tenant config is copied from the primary")
		}
		if len(info.TenantConfig) > 0 {
			tenants, err = tenant.NewConfig(info.TenantConfig)
			if err != nil {
				log.Error("primary's tenant config does not validate", "err", err)
				os.Exit(1)
			}
		}
		// Partition identity is world config too: a promoted standby
		// must answer the gateway with the same partition echo and keep
		// assigning ids from the same disjoint range.
		if info.Partition != nil {
			partID, partCount, partBase = info.Partition.ID, info.Partition.Count, info.Partition.IDBase
		}
		log.Info("following primary", "primary", *follow, "policy", info.Policy,
			"regions", len(clusters), "horizon_hours", horizon, "seed", worldSeed,
			"tenants", len(info.TenantConfig))
	} else {
		for _, code := range strings.Split(*regionList, ",") {
			code = strings.TrimSpace(code)
			if _, ok := regions.ByCode(code); !ok {
				log.Error("unknown region", "region", code)
				os.Exit(2)
			}
			clusters = append(clusters, sched.Cluster{Region: code, Slots: *slots})
		}
		if *tenantsPath != "" {
			data, err := os.ReadFile(*tenantsPath)
			if err != nil {
				log.Error("reading -tenants file failed", "err", err)
				os.Exit(2)
			}
			if tenants, err = tenant.ParseConfig(data); err != nil {
				log.Error("bad -tenants config", "file", *tenantsPath, "err", err)
				os.Exit(2)
			}
			log.Info("multi-tenant admission enabled", "file", *tenantsPath,
				"tenants", strings.Join(tenants.Names(), ","))
		}
	}

	var regs []regions.Region
	for _, c := range clusters {
		r, ok := regions.ByCode(c.Region)
		if !ok {
			log.Error("primary region not in catalog", "region", c.Region)
			os.Exit(1)
		}
		regs = append(regs, r)
	}

	log.Info("generating traces", "regions", len(regs))
	set, err := simgrid.GenerateCached(ctx, regs, simgrid.Config{Seed: worldSeed, Hours: horizon}, 0)
	if err != nil {
		log.Error("trace generation failed", "err", err)
		os.Exit(1)
	}

	// The replay clock maps wall time since boot to trace hours. After a
	// recovery — or a promotion — the fleet is already at some hour
	// H > 0, so the clock rebases to resume from there; otherwise a
	// restarted (or just-promoted) scheduler would freeze until wall
	// time caught back up to H/speedup.
	var baseHours atomic.Int64
	var bootNano atomic.Int64
	bootNano.Store(time.Now().UnixNano())
	clock := func() time.Time {
		simElapsed := time.Duration(float64(time.Now().UnixNano()-bootNano.Load()) * *speedup)
		return set.Start().Add(time.Duration(baseHours.Load())*time.Hour + simElapsed)
	}
	rebase := func(hour int) {
		bootNano.Store(time.Now().UnixNano())
		baseHours.Store(int64(hour))
	}

	cfg := schedd.Config{
		Policy:        policy,
		Horizon:       horizon,
		Shards:        *shards,
		MaxJobs:       *maxJobs,
		MaxQueue:      *maxQueue,
		Seed:          worldSeed,
		Speedup:       *speedup,
		PartitionID:   partID,
		Partitions:    partCount,
		IDBase:        partBase,
		DataDir:       *dataDir,
		SnapshotEvery: *snapEvery,
		Sync:          sync,
		Advertise:     *advertise,
		Tenants:       tenants,

		TraceSampleEvery: *traceSample,
		TraceSlow:        *traceSlow,
	}

	var srv *schedd.Server
	if *follow != "" {
		srv, err = schedd.NewFollower(set, clusters, cfg, schedd.FollowerConfig{
			Primary:       *follow,
			ProbeInterval: *probeEvery,
			ProbeFailures: *probeFails,
		}, schedd.WithClock(clock), schedd.WithPromoteNotify(func(hour int) {
			rebase(hour)
			log.Info("promoted to primary", "hour", hour)
		}))
	} else {
		srv, err = schedd.New(set, clusters, cfg, schedd.WithClock(clock))
	}
	if err != nil {
		log.Error("server construction failed", "err", err)
		os.Exit(1)
	}
	defer srv.Close()
	rebase(srv.Hour())
	if *dataDir != "" && *follow == "" {
		if rec := srv.Recovery(); rec.Recovered {
			log.Info("recovered previous incarnation", "jobs", rec.RecoveredJobs,
				"hour", srv.Hour(), "data_dir", *dataDir,
				"snapshot_hour", rec.RecoveredSnapshotHour,
				"replayed_records", rec.ReplayedRecords, "torn_tail", rec.TornTail)
		} else {
			log.Info("journaling", "data_dir", *dataDir, "fsync", sync.String(), "snapshot_every_hours", *snapEvery)
		}
	}
	srv.Start(ctx)

	// The operator debug mux: pprof plus the trace ring, on its own
	// listener so profiling endpoints never ride the service address.
	if *debugAddr != "" {
		debug := &http.Server{
			Addr: *debugAddr,
			Handler: serve.NewDebugMux(map[string]http.Handler{
				"/debug/traces": srv.Tracer().Handler(),
			}),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Info("debug listener up", "addr", *debugAddr)
			if err := serve.ListenAndServe(ctx, debug, time.Second); err != nil {
				log.Error("debug listener failed", "err", err)
			}
		}()
	}

	log.Info("serving", "policy", policy.Name(), "regions", len(clusters),
		"addr", *addr, "speedup", *speedup)
	if *shards != 0 {
		log.Info("fleet sharded", "shards", *shards)
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// os.Exit skips deferred calls, so every exit path below closes the
	// server explicitly first: Close flushes the journal's final batch
	// — without it an orderly error exit would lose the last -fsync
	// batch window of acknowledged admissions, just like a kill -9.
	if err := serve.ListenAndServe(ctx, server, serve.DefaultGrace); err != nil {
		srv.Close()
		log.Error("server failed", "err", err)
		os.Exit(1)
	}

	if srv.Role() == "follower" {
		// A follower holds no authority over the fleet: there is nothing
		// to drain, the primary owns every acknowledged job.
		log.Info("follower stopped")
		return
	}

	// HTTP is down; run the world forward so every admitted job is
	// accounted for before exit.
	log.Info("draining fleet")
	res, err := srv.Drain()
	if err != nil {
		srv.Close()
		log.Error("drain failed", "err", err)
		os.Exit(1)
	}
	log.Info("drained", "jobs", len(res.Outcomes), "completed", res.Completed,
		"missed", res.Missed, "kg_co2eq", res.TotalEmissions/1000,
		"utilization_pct", 100*res.Utilization())
}

// fetchPrimaryConfig polls the primary's /v1/stats until it answers
// (the primary may still be generating traces), with a bounded wait.
func fetchPrimaryConfig(ctx context.Context, primary string) (schedd.StatsResponse, error) {
	client, err := schedd.NewClient(primary, &http.Client{Timeout: 5 * time.Second})
	if err != nil {
		return schedd.StatsResponse{}, err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		info, err := client.Stats(ctx)
		if err == nil {
			if len(info.Clusters) == 0 {
				return info, fmt.Errorf("primary %s reports no clusters", primary)
			}
			return info, nil
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return schedd.StatsResponse{}, fmt.Errorf("fetching primary config from %s: %w", primary, err)
		}
		time.Sleep(time.Second)
	}
}
