// Command regionstat prints a per-region summary of the simulated
// dataset: mean carbon intensity, daily variability, periodicity, and
// cloud-provider presence — a quick way to inspect the catalog the
// experiments run on.
//
// Usage:
//
//	regionstat              # all 123 regions, sorted by mean CI
//	regionstat -hyperscale  # only GCP/AWS/Azure regions (Figure 4 set)
//	regionstat -year 2022
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"carbonshift/internal/fft"
	"carbonshift/internal/regions"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/stats"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "simulation seed")
		year       = flag.Int("year", 2022, "calendar year to summarize")
		hyperscale = flag.Bool("hyperscale", false, "only regions with GCP/AWS/Azure datacenters")
	)
	flag.Parse()

	set, err := simgrid.GenerateAll(simgrid.Config{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "regionstat:", err)
		os.Exit(1)
	}
	yearSet, err := set.Year(*year)
	if err != nil {
		fmt.Fprintln(os.Stderr, "regionstat:", err)
		os.Exit(1)
	}

	type row struct {
		reg     regions.Region
		mean    float64
		dailyCV float64
		p24     float64
	}
	var rows []row
	for _, r := range regions.All() {
		if *hyperscale && !r.Providers.Hyperscale() {
			continue
		}
		tr := yearSet.MustGet(r.Code)
		rows = append(rows, row{
			reg:     r,
			mean:    tr.Mean(),
			dailyCV: stats.DailyCV(tr.CI),
			p24:     fft.ScoreAt(tr.CI, 24),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mean < rows[j].mean })

	fmt.Printf("%-7s %-28s %-14s %8s %9s %7s  %s\n",
		"code", "name", "continent", "mean_ci", "daily_cv", "p24", "providers")
	for _, r := range rows {
		fmt.Printf("%-7s %-28s %-14s %8.1f %9.3f %7.2f  %s\n",
			r.reg.Code, r.reg.Name, r.reg.Continent, r.mean, r.dailyCV, r.p24, r.reg.Providers)
	}
	fmt.Printf("\n%d regions, %d mean CI %.1f g/kWh\n", len(rows), *year, func() float64 {
		var s float64
		for _, r := range rows {
			s += r.mean
		}
		return s / float64(len(rows))
	}())
}
