// Command tracegen generates the synthetic carbon-intensity dataset
// and writes it as CSV (region, RFC3339 timestamp, g·CO₂eq/kWh), one
// row per region-hour — the same long format the analysis tooling
// reads back.
//
// Usage:
//
//	tracegen -out traces.csv
//	tracegen -regions SE,US-CA,IN-WE -hours 720 -seed 7 -out week.csv
//	tracegen -extra-renewables 0.2 -out greener.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"carbonshift/internal/regions"
	"carbonshift/internal/simgrid"
)

func main() {
	var (
		out   = flag.String("out", "", "output CSV path (default stdout)")
		list  = flag.String("regions", "", "comma-separated region codes (default: all 123)")
		hours = flag.Int("hours", 0, "hours to simulate (default: 2020-2022, 26304)")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		extra = flag.Float64("extra-renewables", 0, "shift this fraction of fossil generation to solar+wind")
	)
	flag.Parse()

	regs := regions.All()
	if *list != "" {
		regs = regs[:0]
		for _, code := range strings.Split(*list, ",") {
			r, ok := regions.ByCode(strings.TrimSpace(code))
			if !ok {
				fmt.Fprintf(os.Stderr, "tracegen: unknown region %q\n", code)
				os.Exit(2)
			}
			regs = append(regs, r)
		}
	}

	set, err := simgrid.Generate(regs, simgrid.Config{
		Seed:            *seed,
		Hours:           *hours,
		ExtraRenewables: *extra,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := set.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d regions x %d hours to %s\n",
			set.Size(), set.Len(), *out)
	}
}
