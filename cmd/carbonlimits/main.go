// Command carbonlimits runs the paper's experiments and prints the
// table or CSV series behind each figure.
//
// Usage:
//
//	carbonlimits -list
//	carbonlimits -exp fig5a
//	carbonlimits -all -format csv -out results/
//	carbonlimits -exp fig7 -seed 7 -span 2000 -workers 8
//
// Each experiment id corresponds to one figure of the paper's
// evaluation; see DESIGN.md for the index. Experiments fan their
// independent cells across -workers goroutines (default: one per CPU);
// results are byte-identical for every worker count, and -workers 1
// runs the serial reference path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"carbonshift/internal/core"
	"carbonshift/internal/simgrid"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		report  = flag.Bool("report", false, "emit a full markdown report of every experiment")
		list    = flag.Bool("list", false, "list experiments and exit")
		format  = flag.String("format", "text", "output format: text or csv")
		outDir  = flag.String("out", "", "write per-experiment files into this directory instead of stdout")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		span    = flag.Int("span", 0, "arrival span in hours (default 8760)")
		stride  = flag.Int("stride", 0, "arrival stride for scenario sweeps (default ~293)")
		workers = flag.Int("workers", 0, "engine worker bound (0 = one per CPU, 1 = serial)")
		verbose = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-8s %-14s %s\n", e.ID, e.Figure, e.Title)
		}
		return
	}
	if !*all && !*report && *expID == "" {
		fmt.Fprintln(os.Stderr, "carbonlimits: need -exp <id>, -all, or -report (try -list)")
		os.Exit(2)
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "carbonlimits: unknown format %q\n", *format)
		os.Exit(2)
	}

	var exps []core.Experiment
	if *all {
		exps = core.Experiments()
	} else {
		e, err := core.ExperimentByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carbonlimits:", err)
			os.Exit(2)
		}
		exps = []core.Experiment{e}
	}

	start := time.Now()
	if *verbose {
		fmt.Fprintln(os.Stderr, "carbonlimits: generating 123-region dataset...")
	}
	lab, err := core.NewLabCtx(ctx, core.Options{
		Sim:         simgrid.Config{Seed: *seed},
		ArrivalSpan: *span,
		Stride:      *stride,
		Workers:     *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonlimits:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "carbonlimits: dataset ready in %v (global mean %.1f g/kWh)\n",
			time.Since(start).Round(time.Millisecond), lab.GlobalMean)
	}

	if *report {
		if err := lab.WriteReport(ctx, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "carbonlimits:", err)
			os.Exit(1)
		}
		return
	}

	for _, e := range exps {
		t0 := time.Now()
		tbl, err := e.Run(ctx, lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "carbonlimits: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "carbonlimits: %s done in %v\n",
				e.ID, time.Since(t0).Round(time.Millisecond))
		}
		if err := emit(tbl, *format, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "carbonlimits: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}

func emit(tbl *core.Table, format, outDir string) error {
	if outDir == "" {
		if format == "csv" {
			return tbl.WriteCSV(os.Stdout)
		}
		fmt.Println(tbl.String())
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ext := ".txt"
	if format == "csv" {
		ext = ".csv"
	}
	path := filepath.Join(outDir, tbl.ID+ext)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "csv" {
		if err := tbl.WriteCSV(f); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintln(f, strings.TrimRight(tbl.String(), "\n")); err != nil {
			return err
		}
	}
	return f.Close()
}
