// Command carbonapi serves the simulated dataset as an Electricity
// Maps-style carbon-information web API, replaying the 2020–2022
// traces at a configurable speed.
//
// Usage:
//
//	carbonapi -addr :8080 -speedup 3600    # 1 wall second = 1 trace hour
//	curl localhost:8080/v1/regions
//	curl localhost:8080/v1/carbon-intensity/SE/latest
//	curl 'localhost:8080/v1/carbon-intensity/US-CA/forecast?hours=24'
//	curl 'localhost:8080/v1/carbon-intensity/batch?regions=DE,SE,US-CA'
//	curl localhost:8080/metrics
//
// SIGINT/SIGTERM shuts the server down gracefully, draining in-flight
// requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"carbonshift/internal/carbonapi"
	"carbonshift/internal/serve"
	"carbonshift/internal/simgrid"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		speedup = flag.Float64("speedup", 3600, "trace seconds per wall second (3600 = 1h/s)")
		start   = flag.Int("start-hour", 24*14, "trace hour mapped to process start (leaves forecast warmup)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintln(os.Stderr, "carbonapi: generating 123-region dataset...")
	set, err := simgrid.GenerateAll(simgrid.Config{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonapi:", err)
		os.Exit(1)
	}

	boot := time.Now()
	clock := func() time.Time {
		elapsed := time.Since(boot)
		simElapsed := time.Duration(float64(elapsed) * *speedup)
		return set.Start().Add(time.Duration(*start)*time.Hour + simElapsed)
	}
	srv := carbonapi.NewServer(set, carbonapi.WithClock(clock), carbonapi.WithMetrics())

	fmt.Fprintf(os.Stderr, "carbonapi: serving %d regions on %s (replay speedup %.0fx)\n",
		set.Size(), *addr, *speedup)
	server := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := serve.ListenAndServe(ctx, server, serve.DefaultGrace); err != nil {
		fmt.Fprintln(os.Stderr, "carbonapi:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "carbonapi: shut down cleanly")
}
