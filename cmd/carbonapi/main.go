// Command carbonapi serves the simulated dataset as an Electricity
// Maps-style carbon-information web API, replaying the 2020–2022
// traces at a configurable speed.
//
// Usage:
//
//	carbonapi -addr :8080 -speedup 3600    # 1 wall second = 1 trace hour
//	curl localhost:8080/v1/regions
//	curl localhost:8080/v1/carbon-intensity/SE/latest
//	curl 'localhost:8080/v1/carbon-intensity/US-CA/forecast?hours=24'
//	curl 'localhost:8080/v1/carbon-intensity/batch?regions=DE,SE,US-CA'
//	curl localhost:8080/metrics
//	curl localhost:8080/debug/traces
//
// SIGINT/SIGTERM shuts the server down gracefully, draining in-flight
// requests.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"carbonshift/internal/carbonapi"
	"carbonshift/internal/serve"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/tracing"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		speedup     = flag.Float64("speedup", 3600, "trace seconds per wall second (3600 = 1h/s)")
		start       = flag.Int("start-hour", 24*14, "trace hour mapped to process start (leaves forecast warmup)")
		traceSample = flag.Int("trace-sample", 0, "head-sample 1 in N requests into /debug/traces (0 = default 16, negative = never)")
		traceSlow   = flag.Duration("trace-slow", 0, "always record requests slower than this (0 = default 250ms)")
		debugAddr   = flag.String("debug-addr", "", "operator debug listener (pprof); empty = disabled. Bind it to loopback.")
	)
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("service", "carbonapi")
	slog.SetDefault(log)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("generating dataset", "regions", 123)
	set, err := simgrid.GenerateAll(simgrid.Config{Seed: *seed})
	if err != nil {
		log.Error("dataset generation failed", "err", err)
		os.Exit(1)
	}

	boot := time.Now()
	clock := func() time.Time {
		elapsed := time.Since(boot)
		simElapsed := time.Duration(float64(elapsed) * *speedup)
		return set.Start().Add(time.Duration(*start)*time.Hour + simElapsed)
	}
	srv := carbonapi.NewServer(set,
		carbonapi.WithClock(clock),
		carbonapi.WithMetrics(),
		carbonapi.WithTracing(tracing.Config{SampleEvery: *traceSample, SlowThreshold: *traceSlow}),
	)

	if *debugAddr != "" {
		debug := &http.Server{
			Addr: *debugAddr,
			Handler: serve.NewDebugMux(map[string]http.Handler{
				"/debug/traces": srv.Tracer().Handler(),
			}),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Info("debug listener up", "addr", *debugAddr)
			if err := serve.ListenAndServe(ctx, debug, time.Second); err != nil {
				log.Error("debug listener failed", "err", err)
			}
		}()
	}

	log.Info("serving", "regions", set.Size(), "addr", *addr, "speedup", *speedup)
	server := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := serve.ListenAndServe(ctx, server, serve.DefaultGrace); err != nil {
		log.Error("server failed", "err", err)
		os.Exit(1)
	}
	log.Info("shut down cleanly")
}
