// Quickstart: simulate a few grid regions, then ask the two questions
// the library answers — how much carbon does temporal flexibility save
// a batch job, and how much does spatial flexibility save on top?
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"carbonshift/internal/regions"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/spatial"
	"carbonshift/internal/temporal"
)

func main() {
	// Simulate three months of hourly carbon intensity for a handful
	// of regions. Everything is deterministic under the seed.
	regs := []regions.Region{
		regions.MustByCode("DE"),    // mixed fossil/renewables
		regions.MustByCode("SE"),    // hydro+nuclear, near-zero carbon
		regions.MustByCode("US-CA"), // solar-heavy, strong diurnal cycle
	}
	set, err := simgrid.Generate(regs, simgrid.Config{Seed: 42, Hours: 90 * 24})
	if err != nil {
		log.Fatal(err)
	}
	for _, code := range set.Regions() {
		fmt.Printf("%-6s mean %6.1f g/kWh\n", code, set.MustGet(code).Mean())
	}

	// A 12-hour batch job (1 kW) arrives in Germany at hour 1000 with
	// 24 hours of slack.
	de := set.MustGet("DE")
	const arrival, length, slack = 1000, 12, 24
	res, err := temporal.Evaluate(de.CI, arrival, length, slack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch job in DE: run-now %.0f g, deferred %.0f g (start hour %d), interruptible %.0f g\n",
		res.Baseline, res.Deferred, res.Start, res.Interrupted)
	fmt.Printf("temporal flexibility saves %.0f g (%.0f%%)\n",
		res.TotalSaving(), 100*res.TotalSaving()/res.Baseline)

	// Spatial flexibility: migrate the same job to the greenest region.
	oneCost, dest, err := spatial.OneMigrationCost(set, set.Regions(), arrival, length)
	if err != nil {
		log.Fatal(err)
	}
	infCost, err := spatial.InfMigrationCost(set, set.Regions(), arrival, length)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmigrate once to %s: %.0f g (saves %.0f g vs run-now in DE)\n",
		dest, oneCost, res.Baseline-oneCost)
	fmt.Printf("hop every hour:     %.0f g (only %.0f g better than migrating once)\n",
		infCost, oneCost-infCost)
}
