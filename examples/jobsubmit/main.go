// Submitting a job to the online scheduler: an ML-training-style batch
// job — hours long, interruptible, migratable, with a day of slack — is
// POSTed to an in-process schedd instance and polled to completion
// while the carbon-gate policy decides when and where it runs. The
// job's lifecycle (queued -> running -> done) and final emissions show
// the online service making the same deferral decisions as the paper's
// offline analysis.
//
// Run with:
//
//	go run ./examples/jobsubmit
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"carbonshift/internal/regions"
	"carbonshift/internal/sched"
	"carbonshift/internal/schedd"
	"carbonshift/internal/simgrid"
)

func main() {
	// A two-region fleet over the simulated grid: Germany (coal-heavy,
	// strong diurnal swing) and Sweden (hydro, flat and green).
	codes := []string{"DE", "SE"}
	var regs []regions.Region
	var clusters []sched.Cluster
	for _, code := range codes {
		r, ok := regions.ByCode(code)
		if !ok {
			log.Fatalf("unknown region %q", code)
		}
		regs = append(regs, r)
		clusters = append(clusters, sched.Cluster{Region: code, Slots: 10})
	}
	const horizon = 30 * 24
	set, err := simgrid.Generate(regs, simgrid.Config{Seed: 11, Hours: horizon})
	if err != nil {
		log.Fatal(err)
	}

	// The replay clock is hand-cranked: each poll below advances the
	// world by one hour, so the example runs instantly and
	// deterministically.
	var hour atomic.Int64
	clock := func() time.Time {
		return set.Start().Add(time.Duration(hour.Load()) * time.Hour)
	}
	srv, err := schedd.New(set, clusters, schedd.Config{
		Policy:  sched.CarbonGate{Percentile: 30, Window: 72},
		Horizon: horizon,
		Seed:    11,
	}, schedd.WithClock(clock))
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := schedd.NewClient(ts.URL, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Warm up the gate's lookback window before submitting.
	hour.Store(72)

	fmt.Println("submitting a 6-hour ML training job in DE (24h slack, interruptible, migratable)")
	ack, err := client.Submit(ctx, schedd.JobRequest{
		Origin:        "DE",
		LengthHours:   6,
		SlackHours:    24,
		Interruptible: true,
		Migratable:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	id := ack.IDs[0]
	fmt.Printf("admitted as job %d at replay hour %d\n\n", id, ack.ArrivalHour)

	last := ""
	for {
		job, err := client.Job(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		if state := describe(job); state != last {
			fmt.Printf("hour %4d  %s\n", hour.Load(), state)
			last = state
		}
		if job.State == "done" || job.State == "missed" {
			fmt.Printf("\nfinal emissions: %.0f gCO2eq over 6 run-hours (%.0f g/kWh average)\n",
				job.EmissionsG, job.EmissionsG/6)
			fmt.Printf("waited %d hours for cleaner power, %d migration(s)\n",
				job.WaitHours, job.Migrations)
			break
		}
		hour.Add(1)
	}
}

func describe(job schedd.JobResponse) string {
	switch job.State {
	case "queued":
		return "queued   (the gate is waiting out dirty hours)"
	case "running":
		return fmt.Sprintf("running  in %s, %d hour(s) remaining", job.Region, job.RemainingHours)
	case "done":
		return fmt.Sprintf("done     finished at hour %d in %s", job.CompletedAt, job.Region)
	default:
		return job.State
	}
}
