// Greener-grid what-if: rerun the same carbon-aware schedule while the
// grid's renewable share grows, reproducing the paper's §6.3 takeaway
// at example scale — carbon-aware scheduling keeps winning, but its
// edge over doing nothing shrinks as the grid itself decarbonizes.
//
// Run with:
//
//	go run ./examples/greener
package main

import (
	"fmt"
	"log"

	"carbonshift/internal/regions"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/stats"
	"carbonshift/internal/temporal"
)

func main() {
	region := regions.MustByCode("US-CA")
	const (
		length = 24
		slack  = 7 * 24
		hours  = 120 * 24
	)

	fmt.Println("24h deferrable+interruptible job in US-CA, 7-day slack")
	fmt.Printf("%-12s %12s %12s %12s\n", "renewables", "agnostic g/h", "aware g/h", "advantage")
	for _, add := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		tr, err := simgrid.GenerateRegion(region, simgrid.Config{
			Seed:            3,
			Hours:           hours,
			ExtraRenewables: add,
		})
		if err != nil {
			log.Fatal(err)
		}
		arrivals := tr.Len() - length - slack
		costs, err := temporal.Sweep(tr.CI, length, slack, arrivals)
		if err != nil {
			log.Fatal(err)
		}
		agnostic := stats.Mean(costs.Baseline) / length
		aware := stats.Mean(costs.Interrupted) / length
		fmt.Printf("%-12s %12.1f %12.1f %12.1f\n",
			fmt.Sprintf("+%.0f%%", add*100), agnostic, aware, agnostic-aware)
	}
	fmt.Println("\nboth curves fall, but the gap — the value of being carbon-aware —")
	fmt.Println("falls with them: a greener grid needs less scheduling cleverness.")
}
