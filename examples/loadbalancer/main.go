// Carbon-aware load balancing: interactive requests cannot be delayed,
// but they can be routed. This example routes requests from three
// origin regions to the greenest datacenter reachable within a latency
// SLO, showing the carbon/latency trade-off of the paper's Figure 6(a)
// at the granularity of a single service.
//
// Run with:
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"
	"log"

	"carbonshift/internal/latency"
	"carbonshift/internal/regions"
	"carbonshift/internal/simgrid"
)

func main() {
	// Use the full hyperscale footprint as candidate datacenters.
	regs := regions.All()
	set, err := simgrid.Generate(regs, simgrid.Config{Seed: 11, Hours: 30 * 24})
	if err != nil {
		log.Fatal(err)
	}
	matrix := latency.NewMatrix(regs)
	candidates := regions.Hyperscale()

	origins := []string{"US-VA", "DE", "IN-WE"}
	slos := []float64{10, 25, 50, 100, 250}

	fmt.Println("best reachable datacenter by mean carbon intensity (g/kWh)")
	fmt.Printf("%-8s", "origin")
	for _, slo := range slos {
		fmt.Printf(" %14s", fmt.Sprintf("<=%.0fms", slo))
	}
	fmt.Println()

	for _, origin := range origins {
		fmt.Printf("%-8s", origin)
		local := set.MustGet(origin).Mean()
		for _, slo := range slos {
			reachable, err := matrix.Within(origin, slo)
			if err != nil {
				log.Fatal(err)
			}
			// Route to the greenest reachable hyperscale region.
			best, bestCI := origin, local
			for _, code := range reachable {
				if !contains(candidates, code) {
					continue
				}
				if ci := set.MustGet(code).Mean(); ci < bestCI {
					best, bestCI = code, ci
				}
			}
			fmt.Printf(" %8s %5.0f", best, bestCI)
		}
		fmt.Println()
	}

	fmt.Println("\nwider SLOs reach greener regions; past the point where the")
	fmt.Println("globally greenest datacenter is reachable, extra latency buys nothing.")
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
