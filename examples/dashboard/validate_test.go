package dashboard

// The drift tests: the dashboard, the alert rules, the scrape config,
// and the two operator documents are validated against a LIVE server's
// /metrics output, not against a hand-maintained list — renaming a
// metric, adding an alert without a runbook section, or shipping an
// undocumented family fails this package's tests.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"carbonshift/internal/carbonapi"
	"carbonshift/internal/gateway"
	"carbonshift/internal/sched"
	"carbonshift/internal/schedd"
	"carbonshift/internal/serve"
	"carbonshift/internal/tenant"
	"carbonshift/internal/trace"
)

// liveFamilies renders a real follower schedd (whose registry carries
// the schedd_*, wal_*, repl_*, and http_* families), a carbonapi
// server, and a routing gateway (gateway_*), and returns every family
// name with its TYPE.
func liveFamilies(t *testing.T) map[string]string {
	t.Helper()
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	ci := make([]float64, 48)
	for i := range ci {
		ci[i] = 100
	}
	set, err := trace.NewSet([]*trace.Trace{
		trace.New("CLEAN", start, ci),
		trace.New("DIRTY", start, ci),
	})
	if err != nil {
		t.Fatal(err)
	}
	clusters := []sched.Cluster{{Region: "CLEAN", Slots: 2}, {Region: "DIRTY", Slots: 2}}

	// A follower (never started) registers the full surface; Promote is
	// not needed for registration. The tenant config makes the
	// schedd_tenant_* families live, so this doc-drift test covers the
	// multi-tenant surface too.
	tenants, err := tenant.NewConfig([]tenant.Spec{{Name: "web"}, {Name: "*"}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := schedd.NewFollower(set, clusters, schedd.Config{Policy: sched.FIFO{}, Tenants: tenants},
		schedd.FollowerConfig{Primary: "http://127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	api := carbonapi.NewServer(set, carbonapi.WithMetrics())

	// A gateway registers the gateway_* families at construction;
	// topology learning is lazy, so no live partition is needed.
	gw, err := gateway.New(gateway.Config{Partitions: [][]string{{"http://127.0.0.1:9"}}})
	if err != nil {
		t.Fatal(err)
	}

	fams := map[string]string{}
	renderInto(t, fams, func(buf *bytes.Buffer) error { return srv.Metrics().WriteTo(buf) })
	renderInto(t, fams, func(buf *bytes.Buffer) error { return api.Metrics().WriteTo(buf) })
	renderInto(t, fams, func(buf *bytes.Buffer) error { return gw.Metrics().WriteTo(buf) })
	return fams
}

func renderInto(t *testing.T, fams map[string]string, render func(*bytes.Buffer) error) {
	t.Helper()
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if f := strings.Fields(line); len(f) == 4 && f[0] == "#" && f[1] == "TYPE" {
			fams[f[2]] = f[3]
		}
	}
}

// known reports whether a referenced metric name resolves against the
// live families, accepting the _bucket/_sum/_count series of a
// histogram and Prometheus's synthetic `up`.
func known(fams map[string]string, name string) bool {
	if name == "up" {
		return true
	}
	if _, ok := fams[name]; ok {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if found && fams[base] == "histogram" {
			return true
		}
	}
	return false
}

var identRe = regexp.MustCompile(`[a-zA-Z_][a-zA-Z0-9_]*`)

// metricNames extracts the metric identifiers referenced by a PromQL
// expression: every identifier that carries one of this repo's family
// prefixes, plus `up`.
func metricNames(expr string) []string {
	var out []string
	for _, id := range identRe.FindAllString(expr, -1) {
		switch {
		case strings.HasPrefix(id, "schedd_"),
			strings.HasPrefix(id, "wal_"),
			strings.HasPrefix(id, "repl_"),
			strings.HasPrefix(id, "http_"),
			strings.HasPrefix(id, "carbonapi_"),
			strings.HasPrefix(id, "gateway_"),
			id == "up":
			out = append(out, id)
		}
	}
	return out
}

func TestDashboardJSON(t *testing.T) {
	raw, err := os.ReadFile("dashboard.json")
	if err != nil {
		t.Fatal(err)
	}
	var dash struct {
		Title  string `json:"title"`
		Panels []struct {
			Title   string `json:"title"`
			Targets []struct {
				Expr string `json:"expr"`
			} `json:"targets"`
		} `json:"panels"`
	}
	if err := json.Unmarshal(raw, &dash); err != nil {
		t.Fatalf("dashboard.json is not valid JSON: %v", err)
	}
	if dash.Title == "" || len(dash.Panels) < 10 {
		t.Fatalf("dashboard has title %q and %d panels; want a title and >= 10 panels", dash.Title, len(dash.Panels))
	}
	fams := liveFamilies(t)
	for _, p := range dash.Panels {
		if len(p.Targets) == 0 {
			t.Errorf("panel %q has no query targets", p.Title)
		}
		for _, tgt := range p.Targets {
			if tgt.Expr == "" {
				t.Errorf("panel %q has a target without an expr", p.Title)
			}
			for _, name := range metricNames(tgt.Expr) {
				if !known(fams, name) {
					t.Errorf("panel %q references %s, which no live /metrics exposes", p.Title, name)
				}
			}
		}
	}
}

func TestAlertRules(t *testing.T) {
	raw, err := os.ReadFile("alerts.yml")
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	alerts := regexp.MustCompile(`(?m)^\s*- alert:\s*(\S+)`).FindAllStringSubmatch(text, -1)
	exprs := regexp.MustCompile(`(?m)^\s*expr:\s*(.+)$`).FindAllStringSubmatch(text, -1)
	if len(alerts) < 4 {
		t.Fatalf("alerts.yml ships %d alerts; want at least the 4 core rules", len(alerts))
	}
	if len(exprs) != len(alerts) {
		t.Fatalf("alerts.yml has %d alerts but %d exprs", len(alerts), len(exprs))
	}

	fams := liveFamilies(t)
	for _, m := range exprs {
		for _, name := range metricNames(m[1]) {
			if !known(fams, name) {
				t.Errorf("alert expr %q references %s, which no live /metrics exposes", m[1], name)
			}
		}
	}

	// Every alert must carry a runbook annotation and a matching
	// section (## AlertName heading) in docs/RUNBOOK.md.
	runbook, err := os.ReadFile("../../docs/RUNBOOK.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range alerts {
		name := m[1]
		if !strings.Contains(text, "runbook: docs/RUNBOOK.md#"+strings.ToLower(name)) {
			t.Errorf("alert %s has no runbook: annotation pointing at docs/RUNBOOK.md", name)
		}
		if !strings.Contains(string(runbook), "## "+name) {
			t.Errorf("alert %s has no `## %s` section in docs/RUNBOOK.md", name, name)
		}
	}
}

func TestPrometheusConfig(t *testing.T) {
	raw, err := os.ReadFile("prometheus.yml")
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{"- alerts.yml", "job_name: schedd", "job_name: carbonapi", "scrape_interval:"} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus.yml is missing %q", want)
		}
	}
}

// TestDocDebugRoutesExist pins every /debug/... route the operator
// docs mention to a live handler: each referenced path must be served
// (non-404) by either the service handler (where /debug/traces lives)
// or the -debug-addr operator mux (where pprof lives). A doc telling
// an operator to curl a route that no longer exists fails here.
func TestDocDebugRoutesExist(t *testing.T) {
	var docs []string
	for _, p := range []string{"../../docs/OBSERVABILITY.md", "../../docs/RUNBOOK.md"} {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, string(raw))
	}
	routes := map[string]bool{}
	re := regexp.MustCompile(`/debug/[a-z]+/?`)
	for _, doc := range docs {
		for _, r := range re.FindAllString(doc, -1) {
			routes[r] = true
		}
	}
	if !routes["/debug/traces"] || !routes["/debug/pprof/"] {
		t.Fatalf("docs reference %v; expected at least /debug/traces and /debug/pprof/", routes)
	}

	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	ci := make([]float64, 48)
	for i := range ci {
		ci[i] = 100
	}
	set, err := trace.NewSet([]*trace.Trace{trace.New("CLEAN", start, ci)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := schedd.New(set, []sched.Cluster{{Region: "CLEAN", Slots: 2}},
		schedd.Config{Policy: sched.FIFO{}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	handlers := map[string]http.Handler{
		"service": srv.Handler(),
		"debug mux": serve.NewDebugMux(map[string]http.Handler{
			"/debug/traces": srv.Tracer().Handler(),
		}),
	}
	for route := range routes {
		served := false
		for name, h := range handlers {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, route, nil))
			if rr.Code != http.StatusNotFound {
				t.Logf("%s serves %s (%d)", name, route, rr.Code)
				served = true
			}
		}
		if !served {
			t.Errorf("docs reference %s but no handler serves it", route)
		}
	}
}

// TestObservabilityDocCoverage pins the reference doc to the live
// surface in both directions: every family a real server exposes is
// documented, and every schedd_*/wal_*/repl_* name the doc backticks
// still exists.
func TestObservabilityDocCoverage(t *testing.T) {
	raw, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	fams := liveFamilies(t)
	for name := range fams {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("live family %s is not documented in docs/OBSERVABILITY.md", name)
		}
	}
	for _, m := range regexp.MustCompile("`(schedd_[a-z_]+|wal_[a-z_]+|repl_[a-z_]+|carbonapi_[a-z_]+|http_[a-z_]+|gateway_[a-z_]+)`").FindAllStringSubmatch(doc, -1) {
		if !known(fams, m[1]) {
			t.Errorf("docs/OBSERVABILITY.md documents %s, which no live /metrics exposes", m[1])
		}
	}
}
