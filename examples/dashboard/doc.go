// Package dashboard holds the example monitoring stack — Prometheus
// scrape config, alert rules, and a Grafana dashboard — for a
// carbonshift deployment. There is no Go code to import here; the
// package exists so the drift test alongside the files runs under the
// ordinary ./... test sweep, pinning three invariants:
//
//   - every metric name referenced by dashboard.json and alerts.yml
//     exists on a live server's /metrics,
//   - every alert shipped in alerts.yml has a matching section in
//     docs/RUNBOOK.md,
//   - every family a live server exposes is documented in
//     docs/OBSERVABILITY.md.
//
// See README.md in this directory for the quickstart.
package dashboard
