// Carbon-aware decisions over the API: this example runs the
// carbon-information service in-process, then acts as its client — the
// way a real scheduler would consume Electricity Maps or WattTime. It
// polls the current intensity of candidate regions, fetches a
// day-ahead forecast, and picks when and where to launch a batch job.
//
// Run with:
//
//	go run ./examples/carbonclient
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"carbonshift/internal/carbonapi"
	"carbonshift/internal/regions"
	"carbonshift/internal/simgrid"
)

func main() {
	// Serve a few regions in-process on a loopback port.
	regs := []regions.Region{
		regions.MustByCode("DE"),
		regions.MustByCode("SE"),
		regions.MustByCode("US-CA"),
	}
	set, err := simgrid.Generate(regs, simgrid.Config{Seed: 9, Hours: 60 * 24})
	if err != nil {
		log.Fatal(err)
	}
	now := set.Start().Add(30 * 24 * time.Hour) // mid-dataset "today"
	srv := carbonapi.NewServer(set, carbonapi.WithClock(func() time.Time { return now }))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil && err != http.ErrServerClosed {
			log.Print(err)
		}
	}()

	client, err := carbonapi.NewClient("http://"+ln.Addr().String(), nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// 1. Where is it cleanest right now?
	codes, err := client.Regions(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("current carbon intensity:")
	best, bestCI := "", 0.0
	for _, code := range codes {
		p, err := client.Latest(ctx, code)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %6.1f %s\n", code, p.CarbonIntensity, carbonapi.Unit)
		if best == "" || p.CarbonIntensity < bestCI {
			best, bestCI = code, p.CarbonIntensity
		}
	}
	fmt.Printf("-> spatial choice: %s\n\n", best)

	// 2. When should a 4-hour job run in Germany today?
	fc, err := client.Forecast(ctx, "DE", 24)
	if err != nil {
		log.Fatal(err)
	}
	bestStart, bestSum := 0, 0.0
	for s := 0; s+4 <= len(fc); s++ {
		var sum float64
		for i := s; i < s+4; i++ {
			sum += fc[i].CarbonIntensity
		}
		if s == 0 || sum < bestSum {
			bestStart, bestSum = s, sum
		}
	}
	fmt.Printf("DE day-ahead forecast: cheapest 4h window starts %s (predicted %.0f g total)\n",
		fc[bestStart].Timestamp.Format("15:04"), bestSum)

	// 3. Sanity-check the forecast against recent history.
	hist, err := client.History(ctx, "DE", 24)
	if err != nil {
		log.Fatal(err)
	}
	var histMean float64
	for _, p := range hist {
		histMean += p.CarbonIntensity
	}
	histMean /= float64(len(hist))
	fmt.Printf("DE trailing-24h mean: %.0f %s — deferring into the forecast valley saves %.0f%%\n",
		histMean, carbonapi.Unit, 100*(1-bestSum/4/histMean))
}
