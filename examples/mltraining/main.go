// ML training with checkpoints: a 96-hour training job that can be
// suspended and resumed. The example sweeps the deferral slack and
// shows the schedule the interruptible policy actually picks — the
// suspend/resume pattern a checkpointing trainer would follow — and
// how the savings saturate with slack (the paper's sub-linear slack
// result).
//
// Run with:
//
//	go run ./examples/mltraining
package main

import (
	"fmt"
	"log"

	"carbonshift/internal/regions"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/temporal"
	"carbonshift/internal/workload"
)

func main() {
	// Train in California: strong solar cycle, so there is real carbon
	// to harvest by pausing at night.
	tr, err := simgrid.GenerateRegion(regions.MustByCode("US-CA"),
		simgrid.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	job := workload.Job{
		Class:         workload.Batch,
		LengthHours:   96,
		Arrival:       24 * 40, // mid-February submission
		Interruptible: true,
	}
	length := job.WholeHours()

	fmt.Printf("96h training job in US-CA, arriving hour %d\n\n", job.Arrival)
	fmt.Printf("%-8s %12s %12s %12s %9s\n", "slack", "run-now g", "deferred g", "interrupt g", "saving%")
	for _, slack := range []int{0, workload.Slack24H, workload.Slack7D, workload.Slack30D, workload.Slack1Y} {
		res, err := temporal.Evaluate(tr.CI, job.Arrival, length, slack)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.0f %12.0f %12.0f %8.1f%%\n",
			fmt.Sprintf("%dh", slack), res.Baseline, res.Deferred, res.Interrupted,
			100*res.TotalSaving()/res.Baseline)
	}

	// Show the actual suspend/resume plan for the 7-day-slack case:
	// contiguous runs of chosen hours are training segments, gaps are
	// checkpointed pauses.
	hours, err := temporal.Schedule(tr.CI, job.Arrival, length, workload.Slack7D)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule with 7d slack (%d segments):\n", countSegments(hours))
	for _, seg := range segments(hours) {
		fmt.Printf("  train hours %5d..%5d (%3d h)\n", seg[0], seg[1], seg[1]-seg[0]+1)
	}
}

// segments compresses sorted hour indices into [start, end] runs.
func segments(hours []int) [][2]int {
	var out [][2]int
	for i := 0; i < len(hours); {
		j := i
		for j+1 < len(hours) && hours[j+1] == hours[j]+1 {
			j++
		}
		out = append(out, [2]int{hours[i], hours[j]})
		i = j + 1
	}
	return out
}

func countSegments(hours []int) int { return len(segments(hours)) }
