// Cluster scheduling under contention: the paper's limits analysis
// assumes every job can run in the cleanest hours; a real cluster has
// finite slots. This example runs the same job stream through a
// carbon-agnostic and a carbon-aware scheduler at several capacity
// levels, and converts the result to facility-level Scope 2 emissions
// with the energy model.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"carbonshift/internal/energy"
	"carbonshift/internal/regions"
	"carbonshift/internal/sched"
	"carbonshift/internal/simgrid"
)

func main() {
	const horizon = 45 * 24
	region := regions.MustByCode("DE")
	set, err := simgrid.Generate([]regions.Region{region},
		simgrid.Config{Seed: 21, Hours: horizon})
	if err != nil {
		log.Fatal(err)
	}

	jobs, err := sched.GenerateJobs(sched.WorkloadSpec{
		Jobs:              300,
		ArrivalSpan:       horizon - 10*24,
		SlackHours:        48,
		InterruptibleFrac: 1,
		MigratableFrac:    0,
		Origins:           []string{"DE"},
		Seed:              21,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Length > 24 {
			jobs[i].Length = 24
		}
	}

	fmt.Println("300 interruptible jobs in DE, 48h slack; carbon-gate vs FIFO")
	fmt.Printf("%-8s %12s %12s %9s %7s\n", "slots", "fifo kg", "gate kg", "saving", "missed")
	for _, slots := range []int{200, 40, 20, 12} {
		cl := []sched.Cluster{{Region: "DE", Slots: slots}}
		fifo, err := sched.Run(set, cl, jobs, sched.FIFO{}, horizon)
		if err != nil {
			log.Fatal(err)
		}
		gate, err := sched.Run(set, cl, jobs,
			sched.CarbonGate{Percentile: 35, Window: 168}, horizon)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %12.1f %12.1f %8.1f%% %7d\n",
			slots, fifo.TotalEmissions/1000, gate.TotalEmissions/1000,
			100*(fifo.TotalEmissions-gate.TotalEmissions)/fifo.TotalEmissions,
			gate.Missed)
	}

	// Facility view: what does the whole datacenter emit while hosting
	// this, idle power included?
	dc := energy.Datacenter{Servers: 40, Server: energy.DefaultServer, PUE: 1.2}
	util := make([]float64, horizon)
	for i := range util {
		util[i] = 0.35 // the job stream's rough mean utilization at 40 slots
	}
	rep, err := energy.Scope2Utilization(set.MustGet("DE"), dc, util, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfacility Scope 2 over %d days: %.0f kWh, %.1f t CO2eq (effective CI %.0f g/kWh)\n",
		horizon/24, rep.EnergyKWh, rep.EmissionsKg/1000, rep.EffectiveCI())
	fmt.Println("idle servers burn carbon too — stranding capacity to chase clean hours is not free.")
}
