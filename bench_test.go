package carbonshift_test

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablations of the algorithmic choices DESIGN.md calls
// out. Each figure benchmark runs the corresponding experiment on the
// shared full dataset and reports the resulting rows via b.Log on the
// first iteration, so `go test -bench=. -benchmem` both regenerates
// and times every result.
//
// Note on caching: the Lab memoizes temporal sweeps, so the first
// iteration of the Figure 7-10 family pays the full cost and later
// iterations measure the assembled-table path. The ablation benchmarks
// below measure the raw kernels without caching.

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carbonshift/internal/core"
	"carbonshift/internal/fft"
	"carbonshift/internal/rng"
	"carbonshift/internal/sched"
	"carbonshift/internal/schedd"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/spatial"
	"carbonshift/internal/stats"
	"carbonshift/internal/temporal"
	"carbonshift/internal/trace"
	"carbonshift/internal/wal"
	"carbonshift/internal/workload"
)

var (
	labOnce sync.Once
	lab     *core.Lab
)

func sharedLab(b *testing.B) *core.Lab {
	b.Helper()
	labOnce.Do(func() {
		var err error
		lab, err = core.NewLab(core.Options{Sim: simgrid.Config{Seed: 1}})
		if err != nil {
			panic(err)
		}
	})
	return lab
}

func benchExperiment(b *testing.B, id string) {
	l := sharedLab(b)
	exp, err := core.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := exp.Run(context.Background(), l)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// --- Serial vs parallel engine benchmarks ---
//
// One lab per worker count so each carries the experiment engine bound
// under test; all of them share the process-level simgrid trace cache,
// so only the first pays dataset generation. The benchmarked figures
// (fig4, the global periodicity scan, and the fig11a/fig12 what-ifs)
// memoize nothing inside the Lab, so every iteration re-does the full
// cell fan-out and the ratio Serial/Parallel8 is the engine speedup.

var (
	workerLabsMu sync.Mutex
	workerLabs   = map[int]*core.Lab{}
)

func labWithWorkers(b *testing.B, workers int) *core.Lab {
	b.Helper()
	workerLabsMu.Lock()
	defer workerLabsMu.Unlock()
	if l, ok := workerLabs[workers]; ok {
		return l
	}
	l, err := core.NewLab(core.Options{Sim: simgrid.Config{Seed: 1}, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	workerLabs[workers] = l
	return l
}

func benchExperimentWorkers(b *testing.B, id string, workers int) {
	l := labWithWorkers(b, workers)
	exp, err := core.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(context.Background(), l); err != nil {
			b.Fatal(err)
		}
	}
}

// Global analysis (Figure 4): one FFT-heavy cell per region.
func BenchmarkEngineFig4Serial(b *testing.B)    { benchExperimentWorkers(b, "fig4", 1) }
func BenchmarkEngineFig4Parallel8(b *testing.B) { benchExperimentWorkers(b, "fig4", 8) }

// What-if sweep (Figure 11a): one mixed-fleet evaluation per cell.
func BenchmarkEngineFig11aSerial(b *testing.B)    { benchExperimentWorkers(b, "fig11a", 1) }
func BenchmarkEngineFig11aParallel8(b *testing.B) { benchExperimentWorkers(b, "fig11a", 8) }

// What-if sweep (Figure 12): one combined-shifting destination per cell.
func BenchmarkEngineFig12Serial(b *testing.B)    { benchExperimentWorkers(b, "fig12", 1) }
func BenchmarkEngineFig12Parallel8(b *testing.B) { benchExperimentWorkers(b, "fig12", 8) }

// --- One benchmark per paper table/figure ---

func BenchmarkFig1_TraceAndMix(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig3a_MeanCV(b *testing.B)           { benchExperiment(b, "fig3a") }
func BenchmarkFig3b_ChangeOverTime(b *testing.B)   { benchExperiment(b, "fig3b") }
func BenchmarkFig4_Periodicity(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5a_InfiniteCapacity(b *testing.B) { benchExperiment(b, "fig5a") }
func BenchmarkFig5b_HalfIdle(b *testing.B)         { benchExperiment(b, "fig5b") }
func BenchmarkFig5c_IdleSweep(b *testing.B)        { benchExperiment(b, "fig5c") }
func BenchmarkFig6a_CapacityLatency(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6b_OneVsInf(b *testing.B)         { benchExperiment(b, "fig6b") }
func BenchmarkFig7_Defer(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8_Interrupt(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig9_Combined(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10_Distributions(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig10d_SlackSweep(b *testing.B)      { benchExperiment(b, "fig10d") }
func BenchmarkFig11a_Mixed(b *testing.B)           { benchExperiment(b, "fig11a") }
func BenchmarkFig11b_PredictionError(b *testing.B) { benchExperiment(b, "fig11b") }
func BenchmarkFig11c_GreenerTemporal(b *testing.B) { benchExperiment(b, "fig11c") }
func BenchmarkFig11d_GreenerSpatial(b *testing.B)  { benchExperiment(b, "fig11d") }
func BenchmarkFig12_CombinedShifting(b *testing.B) { benchExperiment(b, "fig12") }

// Extensions beyond the paper's figures (see DESIGN.md).

func BenchmarkExtForecast(b *testing.B)   { benchExperiment(b, "ext-forecast") }
func BenchmarkExtContention(b *testing.B) { benchExperiment(b, "ext-contention") }
func BenchmarkExtOverhead(b *testing.B)   { benchExperiment(b, "ext-overhead") }

// BenchmarkTable1_WorkloadSweep covers Table 1's configuration matrix:
// a full single-region sweep across every job length and slack choice.
func BenchmarkTable1_WorkloadSweep(b *testing.B) {
	l := sharedLab(b)
	tr := l.Set.MustGet("DE")
	lengths := []int{1, 6, 12, 24, 48, 96, 168}
	slacks := []int{24, 168, 576, 720, 8760}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, slack := range slacks {
			for _, length := range lengths {
				arrivals := l.Set.Len() - length - slack
				if arrivals > 8760 {
					arrivals = 8760
				}
				if _, err := temporal.Sweep(tr.CI, length, slack, arrivals); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// --- Dataset generation ---

func BenchmarkDatasetGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simgrid.GenerateAll(simgrid.Config{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

func yearSeries(b *testing.B) []float64 {
	b.Helper()
	src := rng.New(1)
	ci := make([]float64, 8760)
	for i := range ci {
		ci[i] = 300 + 120*math.Sin(2*math.Pi*float64(i)/24) + src.Uniform(-30, 30)
	}
	return ci
}

// Deferral window search: O(n) sliding window vs O(n·k) rescan.
func BenchmarkAblation_DeferWindowSliding(b *testing.B) {
	ci := yearSeries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.MinWindowSum(ci, 168)
	}
}

func BenchmarkAblation_DeferWindowNaive(b *testing.B) {
	ci := yearSeries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.MinWindowSumNaive(ci, 168)
	}
}

// Interruption slot selection: quickselect vs full sort.
func BenchmarkAblation_MinKQuickselect(b *testing.B) {
	ci := yearSeries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.SumBottomK(ci, 168)
	}
}

func BenchmarkAblation_MinKFullSort(b *testing.B) {
	ci := yearSeries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := stats.BottomKIndices(ci, 168)
		var s float64
		for _, j := range idx {
			s += ci[j]
		}
		_ = s
	}
}

// Arrival sweeps: the incremental Fenwick/deque sweep vs re-evaluating
// every arrival from scratch.
func BenchmarkAblation_SweepIncremental(b *testing.B) {
	ci := yearSeries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := temporal.Sweep(ci, 24, 168, 4000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_SweepNaive(b *testing.B) {
	ci := yearSeries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := temporal.SweepNaive(ci, 24, 168, 4000); err != nil {
			b.Fatal(err)
		}
	}
}

// ∞-migration argmin: precomputed envelope vs per-hour scans.
func BenchmarkAblation_ArgminEnvelope(b *testing.B) {
	l := sharedLab(b)
	codes := l.Set.Regions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		min, err := spatial.MinSeries(l.Set, codes)
		if err != nil {
			b.Fatal(err)
		}
		_ = min
	}
}

func BenchmarkAblation_ArgminPerHourScan(b *testing.B) {
	l := sharedLab(b)
	codes := l.Set.Regions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One year of hourly argmin scans through the Set interface.
		if _, err := spatial.InfMigrationCost(l.Set, codes, 0, 8760); err != nil {
			b.Fatal(err)
		}
	}
}

// FFT for periodicity: Bluestein at the exact series length vs
// zero-padding to a power of two.
func BenchmarkAblation_FFTBluesteinExact(b *testing.B) {
	ci := yearSeries(b)
	cx := make([]complex128, len(ci))
	for i, v := range ci {
		cx[i] = complex(v, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fft.FFT(cx)
	}
}

func BenchmarkAblation_FFTPaddedRadix2(b *testing.B) {
	ci := yearSeries(b)
	padded := make([]complex128, 16384)
	for i, v := range ci {
		padded[i] = complex(v, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fft.FFT(padded)
	}
}

// --- Online scheduling (internal/schedd + the incremental Fleet) ---

// schedWorld builds the two-region diurnal world used by the sched and
// schedd tests, sized for year-scale stepping.
func schedWorld(b *testing.B, hours int) (*trace.Set, []sched.Cluster) {
	b.Helper()
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	clean := make([]float64, hours)
	dirty := make([]float64, hours)
	for h := 0; h < hours; h++ {
		clean[h] = 20
		dirty[h] = 200 + 600*float64(h%24)/24
	}
	set, err := trace.NewSet([]*trace.Trace{
		trace.New("CLEAN", t0, clean),
		trace.New("DIRTY", t0, dirty),
	})
	if err != nil {
		b.Fatal(err)
	}
	return set, []sched.Cluster{{Region: "CLEAN", Slots: 100}, {Region: "DIRTY", Slots: 100}}
}

// BenchmarkFleetStep measures one incremental tick of the simulator
// with a realistic outstanding-job population — the unit of work behind
// every schedd request and every hour of sched.Run.
func BenchmarkFleetStep(b *testing.B) {
	const hours = 24 * 365
	set, cl := schedWorld(b, hours)
	jobs, err := sched.GenerateJobs(sched.WorkloadSpec{
		Jobs: 2000, ArrivalSpan: hours - 10*24, SlackHours: 48,
		InterruptibleFrac: 0.8, MigratableFrac: 0.5,
		Origins: []string{"CLEAN", "DIRTY"}, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	mkFleet := func() *sched.Fleet {
		f, err := sched.NewFleet(set, cl, sched.SpatioTemporal{Percentile: 40, Window: 48}, hours)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Submit(jobs...); err != nil {
			b.Fatal(err)
		}
		return f
	}
	fleet := mkFleet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fleet.Done() {
			b.StopTimer()
			fleet = mkFleet()
			b.StartTimer()
		}
		if err := fleet.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// schedWorldN builds an nRegions-region world with staggered diurnal
// cycles, sized for the sharded-fleet benchmarks.
func schedWorldN(b *testing.B, hours, nRegions, slots int) (*trace.Set, []sched.Cluster) {
	b.Helper()
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	var traces []*trace.Trace
	var cl []sched.Cluster
	for r := 0; r < nRegions; r++ {
		ci := make([]float64, hours)
		base := 40 + 80*float64(r)
		for h := 0; h < hours; h++ {
			ci[h] = base + 250*(1+math.Sin(2*math.Pi*float64(h+3*r)/24))
		}
		code := fmt.Sprintf("R%02d", r)
		traces = append(traces, trace.New(code, t0, ci))
		cl = append(cl, sched.Cluster{Region: code, Slots: slots})
	}
	set, err := trace.NewSet(traces)
	if err != nil {
		b.Fatal(err)
	}
	return set, cl
}

// BenchmarkShardedFleetStep is BenchmarkFleetStep's sharded twin: the
// same per-tick unit of work over an 8-region world, stepped by an
// 8-shard fleet. Compare against BenchmarkFleetStep8Regions (the
// serial fleet on the identical world) for the shard speedup at
// moderate population.
func BenchmarkShardedFleetStep(b *testing.B) {
	benchFleetStepN(b, 2000, 8)
}

// BenchmarkFleetStep8Regions is the serial baseline on the same world
// BenchmarkShardedFleetStep uses.
func BenchmarkFleetStep8Regions(b *testing.B) {
	benchFleetStepN(b, 2000, 0)
}

// fleetStepper is the Step loop both fleet forms share, so the serial
// and sharded benchmarks construct their worlds through one helper.
type fleetStepper interface {
	Done() bool
	Step() error
	Submit(...sched.Job) error
}

// benchStepFleet runs b.N Steps, rebuilding via mk (with the timer
// paused) whenever a fleet exhausts its horizon.
func benchStepFleet(b *testing.B, mk func() fleetStepper) {
	fleet := mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fleet.Done() {
			b.StopTimer()
			fleet = mk()
			b.StartTimer()
		}
		if err := fleet.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// mkStepFleet builds a submitted fleet over the given world: shards ==
// 0 means the serial Fleet, otherwise a ShardedFleet with that many
// shards.
func mkStepFleet(b *testing.B, set *trace.Set, cl []sched.Cluster,
	policy sched.Policy, hours, shards int, stream []sched.Job) fleetStepper {
	b.Helper()
	var f fleetStepper
	var err error
	if shards == 0 {
		f, err = sched.NewFleet(set, cl, policy, hours)
	} else {
		f, err = sched.NewShardedFleet(set, cl, policy, hours, shards)
	}
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Submit(stream...); err != nil {
		b.Fatal(err)
	}
	return f
}

// benchFleetStepN steps a fleet over an 8-region year with the given
// job population.
func benchFleetStepN(b *testing.B, jobs, shards int) {
	const hours = 24 * 365
	set, cl := schedWorldN(b, hours, 8, 100)
	var origins []string
	for _, c := range cl {
		origins = append(origins, c.Region)
	}
	stream, err := sched.GenerateJobs(sched.WorkloadSpec{
		Jobs: jobs, ArrivalSpan: hours - 10*24, SlackHours: 48,
		InterruptibleFrac: 0.8, MigratableFrac: 0.5,
		Origins: origins, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	policy := sched.SpatioTemporal{Percentile: 40, Window: 48}
	benchStepFleet(b, func() fleetStepper {
		return mkStepFleet(b, set, cl, policy, hours, shards, stream)
	})
}

// --- 1M-job scale pair ---
//
// The online-path scale benchmark of DESIGN.md's sharded-fleet
// section: one million jobs spread over a year, serial Fleet vs
// 8-shard ShardedFleet. The serial fleet rescans every submitted job
// four times per tick; the sharded fleet scans only arrived,
// uncompleted jobs, in parallel — the ratio of these two benchmarks is
// the online Step-throughput multiplier recorded in BENCH_*.json.

var (
	scaleOnce sync.Once
	scaleJobs []sched.Job
)

func scaleStream(b *testing.B, origins []string) []sched.Job {
	b.Helper()
	scaleOnce.Do(func() {
		const hours = 24 * 365
		jobs, err := sched.GenerateJobs(sched.WorkloadSpec{
			Jobs: 1_000_000, ArrivalSpan: hours - 14*24, SlackHours: 48,
			Dist:              workload.DistAzure,
			InterruptibleFrac: 0.8, MigratableFrac: 0.5,
			Origins: origins, Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		for i := range jobs {
			if jobs[i].Length > 24 {
				jobs[i].Length = 24
			}
		}
		scaleJobs = jobs
	})
	return scaleJobs
}

func benchScaleFleetStep(b *testing.B, shards int) {
	const hours = 24 * 365
	set, cl := schedWorldN(b, hours, 8, 2000)
	var origins []string
	for _, c := range cl {
		origins = append(origins, c.Region)
	}
	stream := scaleStream(b, origins)
	benchStepFleet(b, func() fleetStepper {
		return mkStepFleet(b, set, cl, sched.GreenestFirst{}, hours, shards, stream)
	})
}

// BenchmarkScaleFleetStep1MSerial steps the serial Fleet under one
// million submitted jobs.
func BenchmarkScaleFleetStep1MSerial(b *testing.B) { benchScaleFleetStep(b, 0) }

// BenchmarkScaleFleetStep1MSharded8 steps the 8-shard ShardedFleet
// under the identical one-million-job world; the acceptance bar is
// ≥ 3× the serial Step throughput.
func BenchmarkScaleFleetStep1MSharded8(b *testing.B) { benchScaleFleetStep(b, 8) }

// BenchmarkScheddSubmit measures the full HTTP submission path — JSON
// over a real TCP connection into the fleet — which bounds the job
// throughput cmd/loadgen can drive.
func BenchmarkScheddSubmit(b *testing.B) {
	benchScheddSubmit(b, schedd.Config{
		Policy:  sched.FIFO{},
		MaxJobs: 1 << 30, MaxQueue: 1 << 30,
		// A production-shaped sampling rate: the tracer's untraced fast
		// path (one atomic per request) is what the 5% bar measures, not
		// the cost of recording every span.
		TraceSampleEvery: 1024,
	})
}

// BenchmarkScheddSubmitBinary is BenchmarkScheddSubmit over the binary
// batch protocol, still one job per request — isolating the codec swap
// from the batching win.
func BenchmarkScheddSubmitBinary(b *testing.B) {
	benchScheddSubmitN(b, schedd.Config{
		Policy:  sched.FIFO{},
		MaxJobs: 1 << 30, MaxQueue: 1 << 30,
		TraceSampleEvery: 1024,
	}, 1, true)
}

// BenchmarkScheddSubmitBatch64 submits 64 jobs per JSON request — the
// batching win without the codec swap.
func BenchmarkScheddSubmitBatch64(b *testing.B) {
	benchScheddSubmitN(b, schedd.Config{
		Policy:  sched.FIFO{},
		MaxJobs: 1 << 30, MaxQueue: 1 << 30,
		TraceSampleEvery: 1024,
	}, 64, false)
}

// BenchmarkScheddSubmitBinaryBatch64 is the binary batch fast path: 64
// jobs per CRC-framed request through the pooled zero-allocation
// decoder and one admission critical section. The batch protocol's
// acceptance bar is ≥5× the jobs/s of BenchmarkScheddSubmit.
func BenchmarkScheddSubmitBinaryBatch64(b *testing.B) {
	benchScheddSubmitN(b, schedd.Config{
		Policy:  sched.FIFO{},
		MaxJobs: 1 << 30, MaxQueue: 1 << 30,
		TraceSampleEvery: 1024,
	}, 64, true)
}

// BenchmarkScheddSubmitBinaryBatch64Journaled adds the write-ahead
// journal under batched group-commit fsync: the whole 64-job batch
// shares one admission section and one group-commit append.
func BenchmarkScheddSubmitBinaryBatch64Journaled(b *testing.B) {
	benchScheddSubmitN(b, schedd.Config{
		Policy:  sched.FIFO{},
		MaxJobs: 1 << 30, MaxQueue: 1 << 30,
		DataDir: b.TempDir(), SnapshotEvery: 24,
		Sync: wal.SyncBatch,
	}, 64, true)
}

// BenchmarkScheddSubmitJournaled is the durable twin of
// BenchmarkScheddSubmit: the identical HTTP path with every admission
// appended to a write-ahead journal under batched group-commit fsync.
// The acceptance bar of the durability layer is that this stays within
// 2x of the in-memory path.
func BenchmarkScheddSubmitJournaled(b *testing.B) {
	benchScheddSubmit(b, schedd.Config{
		Policy:  sched.FIFO{},
		MaxJobs: 1 << 30, MaxQueue: 1 << 30,
		DataDir: b.TempDir(), SnapshotEvery: 24,
		Sync: wal.SyncBatch,
	})
}

// BenchmarkScheddSubmitNoMetrics is BenchmarkScheddSubmit with the
// metrics registry and the tracer disabled — the un-instrumented
// baseline. The acceptance bar of the observability layer is that the
// instrumented path (metrics on, tracing sampled 1/1024) stays within
// 5% of this.
func BenchmarkScheddSubmitNoMetrics(b *testing.B) {
	benchScheddSubmit(b, schedd.Config{
		Policy:  sched.FIFO{},
		MaxJobs: 1 << 30, MaxQueue: 1 << 30,
	}, schedd.WithoutMetrics(), schedd.WithoutTracing())
}

func benchScheddSubmit(b *testing.B, cfg schedd.Config, opts ...schedd.Option) {
	benchScheddSubmitN(b, cfg, 1, false, opts...)
}

// benchScheddSubmitN drives the submit path with `batch` jobs per
// request over either codec, reporting jobs/s so differently-batched
// variants compare directly. The ≥5× binary-vs-JSON acceptance bar of
// the batch protocol is jobs/s of BenchmarkScheddSubmitBinaryBatch64
// over jobs/s of BenchmarkScheddSubmit.
func benchScheddSubmitN(b *testing.B, cfg schedd.Config, batch int, binary bool, opts ...schedd.Option) {
	set, cl := schedWorld(b, 24*30)
	srv, err := schedd.New(set, cl, cfg,
		append([]schedd.Option{schedd.WithClock(func() time.Time { return set.Start() })}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := schedd.NewClient(ts.URL, ts.Client())
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]schedd.JobRequest, batch)
	for i := range reqs {
		reqs[i] = schedd.JobRequest{
			Origin: "CLEAN", LengthHours: 4, SlackHours: 48,
			Interruptible: true, Migratable: true,
		}
	}
	submit := client.Submit
	if binary {
		submit = client.SubmitBatch
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := submit(ctx, reqs...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "jobs/s")
}

// replJournal drives a journaling schedd for `hours` replay hours with
// a deterministic workload and reads the resulting journal back — the
// raw record stream a replication follower would receive.
func replJournal(b *testing.B, hours, njobs int) (*trace.Set, []sched.Cluster, [][]byte) {
	b.Helper()
	set, cl := schedWorld(b, hours)
	jobs, err := sched.GenerateJobs(sched.WorkloadSpec{
		Jobs: njobs, ArrivalSpan: hours - 48, SlackHours: 48,
		InterruptibleFrac: 0.7, MigratableFrac: 0.5,
		Origins: []string{"CLEAN", "DIRTY"}, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	var hour atomic.Int64
	srv, err := schedd.New(set, cl, schedd.Config{
		Policy: sched.GreenestFirst{}, Horizon: hours,
		MaxJobs: 1 << 30, MaxQueue: 1 << 30,
		DataDir: dir, Sync: wal.SyncNone,
	}, schedd.WithClock(func() time.Time {
		return set.Start().Add(time.Duration(hour.Load()) * time.Hour)
	}))
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client, err := schedd.NewClient(ts.URL, ts.Client())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	next := 0
	for h := 0; h < hours; h++ {
		hour.Store(int64(h))
		if _, err := client.Stats(ctx); err != nil {
			b.Fatal(err)
		}
		var batch []schedd.JobRequest
		for next < len(jobs) && jobs[next].Arrival == h {
			id := jobs[next].ID
			batch = append(batch, schedd.JobRequest{
				ID: &id, Origin: jobs[next].Origin, LengthHours: jobs[next].Length,
				SlackHours: jobs[next].Slack, Interruptible: jobs[next].Interruptible,
				Migratable: jobs[next].Migratable,
			})
			next++
		}
		if len(batch) > 0 {
			if _, err := client.Submit(ctx, batch...); err != nil {
				b.Fatal(err)
			}
		}
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
	journals, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil || len(journals) == 0 {
		b.Fatalf("no journal in %s (%v)", dir, err)
	}
	sort.Strings(journals)
	var records [][]byte
	if _, err := wal.Replay(journals[len(journals)-1], func(p []byte) error {
		records = append(records, append([]byte(nil), p...))
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return set, cl, records
}

// BenchmarkFollowerApply measures the replication follower's apply
// path: journal records (admissions and hour watermarks) applied in
// stream order into a fresh fleet — the rate at which a hot standby
// can consume its primary's history, and the floor on how fast it
// catches up after a disconnect.
func BenchmarkFollowerApply(b *testing.B) {
	const hours = 24 * 30
	set, cl, records := replJournal(b, hours, 2000)
	mk := func() *schedd.Server {
		s, err := schedd.New(set, cl, schedd.Config{
			Policy: sched.GreenestFirst{}, Horizon: hours,
			MaxJobs: 1 << 30, MaxQueue: 1 << 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	fol := mk()
	i := 0
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if i == len(records) {
			b.StopTimer()
			fol = mk()
			i = 0
			b.StartTimer()
		}
		if err := fol.ApplyReplRecord(records[i]); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

// BenchmarkFollowerRead measures the read path a follower serves while
// replicating: GET /v1/jobs/{id} over HTTP against a fleet populated
// by stream apply, lag header included — the scale-out read capacity
// a hot standby adds.
func BenchmarkFollowerRead(b *testing.B) {
	const hours = 24 * 30
	const njobs = 2000
	set, cl, records := replJournal(b, hours, njobs)
	fol, err := schedd.NewFollower(set, cl, schedd.Config{
		Policy: sched.GreenestFirst{}, Horizon: hours,
		MaxJobs: 1 << 30, MaxQueue: 1 << 30,
	}, schedd.FollowerConfig{Primary: "http://127.0.0.1:9"})
	if err != nil {
		b.Fatal(err)
	}
	defer fol.Close()
	for _, rec := range records {
		if err := fol.ApplyReplRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
	ts := httptest.NewServer(fol.Handler())
	defer ts.Close()
	client, err := schedd.NewClient(ts.URL, ts.Client())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Job(ctx, i%njobs); err != nil {
			b.Fatal(err)
		}
	}
}

// Keep the trace import alive for the envelope benchmark's types.
var _ = trace.Hour
