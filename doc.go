// Package carbonshift reproduces "On the Limitations of Carbon-Aware
// Temporal and Spatial Workload Shifting in the Cloud" (EuroSys 2024)
// as a Go library: a generative grid simulator standing in for the
// Electricity Maps dataset, the temporal and spatial shifting policy
// engines, the what-if scenario machinery, and one experiment per
// figure of the paper's evaluation.
//
// The root package holds only this documentation and the benchmark
// harness (bench_test.go), which regenerates every table and figure.
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory) and is exercised through the cmd/ tools and the
// runnable examples/.
package carbonshift
