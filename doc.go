// Package carbonshift reproduces "On the Limitations of Carbon-Aware
// Temporal and Spatial Workload Shifting in the Cloud" (EuroSys 2024)
// as a Go library: a generative grid simulator standing in for the
// Electricity Maps dataset, the temporal and spatial shifting policy
// engines, the what-if scenario machinery, and one experiment per
// figure of the paper's evaluation.
//
// # Architecture
//
// The implementation lives under internal/ (see DESIGN.md for the full
// system inventory) and is exercised through the cmd/ tools and the
// runnable examples/. Three layers matter most:
//
//   - internal/core owns the dataset and implements one experiment per
//     paper figure. Each experiment decomposes into independent
//     (region × policy × scenario) cells.
//   - internal/engine is the concurrent experiment engine: a
//     context-aware, bounded worker pool that fans those cells across
//     goroutines while keeping every output byte-identical to a serial
//     run. Experiments accept a context.Context and honour
//     cancellation mid-run; the -workers CLI flag (default: one worker
//     per CPU) bounds the fan-out, and -workers 1 is the serial
//     reference path.
//   - internal/simgrid synthesizes the hourly carbon-intensity traces
//     and memoizes them in a process-level cache keyed by the full
//     simulation fingerprint, so each (region, config) trace is
//     generated exactly once per process no matter how many
//     experiments, labs, or benchmark iterations ask for it.
//
// # Online scheduling
//
// Beyond the offline experiments, the repository runs as a live
// system. internal/sched's incremental Fleet (Submit/Step/Snapshot) is
// the engine behind both the batch sched.Run and internal/schedd, the
// online scheduling service; sched.ShardedFleet is its scale-out form —
// job state and slot accounting partitioned by region into
// independently-locked shards, stepped concurrently on the engine pool
// with a serial cross-shard reconciliation phase, so placements stay
// byte-identical to the serial fleet for any shard count. cmd/schedd
// serves job submission, status, and O(1) fleet statistics over HTTP
// against a replayed grid clock, with policy selection, a -shards
// parallelism knob, backpressure bounds, and a graceful drain on
// SIGINT; cmd/loadgen benchmarks it with a deterministic workload
// stream shaped by -profile (steady, bursty, diurnal,
// migratable-heavy) and reports throughput, nearest-rank latency
// percentiles, and the carbon saving versus an offline FIFO baseline.
// cmd/carbonapi is the matching carbon-information API (Electricity
// Maps-style), including a batch endpoint for multi-region consumers.
// The online and offline paths are provably the same scheduler:
// equivalence tests assert byte-identical placements and emissions
// between an HTTP-driven run, the sharded fleet at shard counts 1, 4,
// and 16, and sched.Run, and property-based invariant tests plus
// native fuzz targets (request parsing, client error mapping, journal
// replay) harden the serving surface.
//
// The service is durable: with -data-dir set, schedd journals every
// admission and hour watermark through internal/wal (an append-only,
// CRC-checksummed log with group-commit fsync) and periodically
// snapshots the full fleet state via Fleet.Marshal's versioned binary
// image; on boot it restores the newest snapshot and replays the
// journal tail — tolerating torn final writes — recovering state
// byte-identical to a process that never stopped, as proven by a
// crash-point sweep test across all five policies.
//
// The service is replicated: internal/repl streams that same journal
// over HTTP (resumable cursors, long-poll, snapshot bootstrap, a
// versioned and fuzz-hardened frame format) to hot standbys started
// with schedd -follow. Because journal order is exact fleet-event
// order, a follower applying the stream in sequence is byte-identical
// to the primary at every shared watermark — the replication
// equivalence and prefix-consistency tests pin this for every policy
// and mismatched shard counts, and a chaos test (random partitions and
// follower restarts mid-stream, under -race) proves cursor resume
// never gaps or double-applies. Followers serve read-only job status
// and stats with an X-Replication-Lag-Hours header, reject writes with
// 421 plus a primary hint (which httpx's failover client follows
// automatically), and promote to primary — new journal generation
// under their own flock — on POST /v1/repl/promote or on primary
// health-probe loss; the CI failover e2e kills the primary with
// kill -9 mid-load and asserts zero acknowledged-job loss.
//
// The service is observable: every cmd/ server exposes GET /metrics
// in the Prometheus text format via internal/metrics, a dependency-
// free registry whose hot-path cost is a few atomics. Scheduling
// counters are callback-backed over the same fleet counters /v1/stats
// reads (the two endpoints cannot disagree), latency histograms cover
// submission, stepping, and WAL fsync, and followers report
// replication lag and apply rate. docs/OBSERVABILITY.md documents
// every family, docs/RUNBOOK.md gives per-alert remediation, and
// examples/dashboard/ ships scrape config, alert rules, and a Grafana
// dashboard — all pinned to the live /metrics surface by a drift
// test. cmd/loadgen's -scrape mode asserts the metrics pipeline end
// to end in CI.
//
// Determinism is load-bearing: stochastic cells derive their random
// streams by pre-splitting an explicitly seeded generator
// (internal/rng.SplitN), never from worker identity or scheduling
// order, and every reduction over cell results runs in submission
// order. The serial-vs-parallel equivalence is asserted by tests and
// measured by the Benchmark* pairs in bench_test.go.
//
// The root package holds only this documentation and the benchmark
// harness (bench_test.go), which regenerates every table and figure.
package carbonshift
